//! Protocol-conformance tests for `PeerNode`, driven by injected messages
//! and a message-collecting counterpart actor.

use plsim_des::{Actor, Context, NodeId, SimTime, Simulation};
use plsim_net::{BandwidthClass, Isp, LinkModel, TopologyBuilder, Underlay};
use plsim_node::{PeerConfig, PeerNode, StatsSink};
use plsim_proto::{ChannelId, ChunkId, Message, PeerEntry, SharedPeerList, TimerKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Records every message delivered to it (the kernel is
/// single-threaded, so a shared `Rc` cell suffices).
struct Collector {
    log: Rc<RefCell<Vec<(NodeId, Message)>>>,
}

impl Actor<Message> for Collector {
    fn on_event(&mut self, _ctx: &mut Context<'_, Message>, from: Option<NodeId>, msg: Message) {
        if let Some(from) = from {
            self.log.borrow_mut().push((from, msg));
        }
    }
}

struct TestWorld {
    sim: Simulation<Message>,
    source: NodeId,
    collector: NodeId,
    log: Rc<RefCell<Vec<(NodeId, Message)>>>,
}

/// Builds: a source (node 0) that produces chunks, and a collector
/// (node 1) we can impersonate/inspect.
fn world() -> TestWorld {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut topo = TopologyBuilder::new();
    let source_id = topo.add_host(Isp::Tele, BandwidthClass::Backbone, &mut rng);
    let collector_id = topo.add_host(Isp::Tele, BandwidthClass::Adsl, &mut rng);
    let topology = Arc::new(topo.build());

    let mut sim: Simulation<Message> =
        Simulation::new(7, Underlay::new(Arc::clone(&topology), LinkModel::ideal()));

    let sink = StatsSink::new();
    let source = PeerNode::source(
        PeerConfig::default(),
        ChannelId(1),
        PeerEntry::new(source_id, topology.host(source_id).ip),
        Vec::new(),
        Arc::clone(&topology),
        sink,
    );
    let id = sim.add_actor(Box::new(source));
    assert_eq!(id, source_id);

    let log = Rc::new(RefCell::new(Vec::new()));
    let id = sim.add_actor(Box::new(Collector { log: log.clone() }));
    assert_eq!(id, collector_id);

    sim.inject(
        SimTime::ZERO,
        source_id,
        None,
        Message::Timer(TimerKind::Join),
        0,
    );
    TestWorld {
        sim,
        source: source_id,
        collector: collector_id,
        log,
    }
}

fn replies_of(w: &TestWorld) -> Vec<Message> {
    w.log
        .borrow()
        .iter()
        .filter(|(from, _)| *from == w.source)
        .map(|(_, m)| m.clone())
        .collect()
}

#[test]
fn source_accepts_handshake_and_answers_gossip() {
    let mut w = world();
    w.sim.run_until(SimTime::from_secs(10));
    let hs = Message::Handshake {
        channel: ChannelId(1),
    };
    let sz = hs.wire_size();
    w.sim
        .inject(SimTime::from_secs(10), w.source, Some(w.collector), hs, sz);
    let req = Message::PeerListRequest {
        channel: ChannelId(1),
        my_peers: SharedPeerList::default(),
        req_id: 9,
    };
    let sz = req.wire_size();
    w.sim
        .inject(SimTime::from_secs(11), w.source, Some(w.collector), req, sz);
    w.sim.run_until(SimTime::from_secs(20));

    let replies = replies_of(&w);
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, Message::HandshakeAck { accepted: true, .. })),
        "handshake should be accepted: {replies:?}"
    );
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, Message::PeerListResponse { req_id: 9, .. })),
        "gossip must be answered with the matching req_id"
    );
}

#[test]
fn source_serves_chunks_it_produced_and_rejects_future_ones() {
    let mut w = world();
    // Let the source produce ~30 chunks.
    w.sim.run_until(SimTime::from_secs(31));
    let ask = |w: &mut TestWorld, at: u64, chunk: u64, seq: u64| {
        let msg = Message::DataRequest {
            channel: ChannelId(1),
            chunk: ChunkId(chunk),
            offset: 0,
            count: 5,
            seq,
        };
        let sz = msg.wire_size();
        w.sim
            .inject(SimTime::from_secs(at), w.source, Some(w.collector), msg, sz);
    };
    ask(&mut w, 31, 10, 1); // exists
    ask(&mut w, 31, 500_000, 2); // far future: cannot exist
    w.sim.run_until(SimTime::from_secs(40));

    let replies = replies_of(&w);
    assert!(
        replies.iter().any(|m| matches!(
            m,
            Message::DataReply {
                seq: 1,
                count: 5,
                ..
            }
        )),
        "produced chunk must be served"
    );
    assert!(
        replies.iter().any(|m| matches!(
            m,
            Message::DataReject {
                seq: 2,
                busy: false,
                ..
            }
        )),
        "unknown chunk must be rejected (not busy)"
    );
}

#[test]
fn source_evicts_chunks_behind_the_live_window() {
    let mut w = world();
    let live_window = PeerConfig::default().stream.live_window;
    // Run long enough that chunk 5 has fallen out of the live window.
    let horizon = live_window + 60;
    w.sim.run_until(SimTime::from_secs(horizon));
    let msg = Message::DataRequest {
        channel: ChannelId(1),
        chunk: ChunkId(5),
        offset: 0,
        count: 1,
        seq: 3,
    };
    let sz = msg.wire_size();
    w.sim.inject(
        SimTime::from_secs(horizon),
        w.source,
        Some(w.collector),
        msg,
        sz,
    );
    w.sim.run_until(SimTime::from_secs(horizon + 10));
    let replies = replies_of(&w);
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, Message::DataReject { seq: 3, .. })),
        "evicted chunk must be rejected: {replies:?}"
    );
}

#[test]
fn nat_peer_ignores_unsolicited_handshake() {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut topo = TopologyBuilder::new();
    let nat_id = topo.add_host(Isp::Tele, BandwidthClass::Adsl, &mut rng);
    let other_id = topo.add_host(Isp::Tele, BandwidthClass::Adsl, &mut rng);
    let bootstrap_id = topo.add_host(Isp::Tele, BandwidthClass::Backbone, &mut rng);
    let topology = Arc::new(topo.build());
    let mut sim: Simulation<Message> =
        Simulation::new(3, Underlay::new(Arc::clone(&topology), LinkModel::ideal()));

    let nat_peer = PeerNode::viewer(
        PeerConfig::default(),
        ChannelId(1),
        PeerEntry::new(nat_id, topology.host(nat_id).ip),
        // A dedicated (never-answering) bootstrap node, distinct from the
        // sender below: traffic from the configured bootstrap is exempt
        // from the NAT gate.
        bootstrap_id,
        Arc::clone(&topology),
        StatsSink::new(),
    )
    .behind_nat();
    let id = sim.add_actor(Box::new(nat_peer));
    assert_eq!(id, nat_id);
    let log = Rc::new(RefCell::new(Vec::new()));
    let id = sim.add_actor(Box::new(Collector { log: log.clone() }));
    assert_eq!(id, other_id);
    let id = sim.add_actor(Box::new(Collector {
        log: Rc::new(RefCell::new(Vec::new())),
    }));
    assert_eq!(id, bootstrap_id);

    sim.inject(
        SimTime::ZERO,
        nat_id,
        None,
        Message::Timer(TimerKind::Join),
        0,
    );
    let hs = Message::Handshake {
        channel: ChannelId(1),
    };
    let sz = hs.wire_size();
    sim.inject(SimTime::from_secs(1), nat_id, Some(other_id), hs, sz);
    sim.run_until(SimTime::from_secs(10));

    let acks = log
        .borrow()
        .iter()
        .filter(|(from, m)| *from == nat_id && matches!(m, Message::HandshakeAck { .. }))
        .count();
    assert_eq!(acks, 0, "NATed peer must not ack unsolicited handshakes");
}

#[test]
fn goodbye_removes_the_neighbor() {
    let mut w = world();
    w.sim.run_until(SimTime::from_secs(5));
    let hs = Message::Handshake {
        channel: ChannelId(1),
    };
    let sz = hs.wire_size();
    w.sim
        .inject(SimTime::from_secs(5), w.source, Some(w.collector), hs, sz);
    w.sim.run_until(SimTime::from_secs(6));
    w.sim.inject(
        SimTime::from_secs(6),
        w.source,
        Some(w.collector),
        Message::Goodbye,
        46,
    );
    w.sim.run_until(SimTime::from_secs(20));
    // After goodbye, a gossip request still gets answered (liberal server),
    // but the returned list must not contain the departed peer.
    let req = Message::PeerListRequest {
        channel: ChannelId(1),
        my_peers: SharedPeerList::default(),
        req_id: 77,
    };
    let sz = req.wire_size();
    w.sim
        .inject(SimTime::from_secs(20), w.source, Some(w.collector), req, sz);
    w.sim.run_until(SimTime::from_secs(30));
    let replies = replies_of(&w);
    let list = replies.iter().find_map(|m| match m {
        Message::PeerListResponse {
            req_id: 77, peers, ..
        } => Some(peers.clone()),
        _ => None,
    });
    let list = list.expect("gossip answered");
    assert!(!list.contains(w.collector), "departed peer still listed");
}
