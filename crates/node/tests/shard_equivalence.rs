//! Property test: a sharded world is bit-identical to the single-shard
//! run — same `SimStats`, same metrics snapshot, same capture bytes, same
//! peer stats and fault marks — for 1/2/4 shards at the same seed, over
//! random small worlds, with and without a fault plan whose events cross
//! shard boundaries.

use plsim_des::SimTime;
use plsim_net::{Isp, LinkFault};
use plsim_node::{run_world, FaultPlan, PolicySpec, ProbeSpec, WorldConfig, WorldOutput};
use plsim_workload::{ChannelClass, PopulationSpec, SessionPlan};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fault plan that stresses every cross-shard path at once: a tracker
/// blackout (timers fan out to trackers living on several shards at the
/// same instant), a churn storm (a same-time burst of leaves/rejoins over
/// the whole population), and a link fault over the TELE–CNC interconnect
/// (a fault window that both shard media must activate at the same global
/// pop positions).
fn boundary_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .tracker_blackout(SimTime::from_secs(40), SimTime::from_secs(60))
        .churn_storm(SimTime::from_secs(70), 0.5, Some(SimTime::from_secs(15)))
        .link(LinkFault::loss_ramp(
            SimTime::from_secs(45),
            SimTime::from_secs(85),
            SimTime::from_secs(10),
            0.2,
        ))
}

/// A probe that joins early, so even these short worlds capture traffic.
fn probe(isp: Isp) -> ProbeSpec {
    ProbeSpec {
        join_s: 30.0,
        ..ProbeSpec::residential(isp)
    }
}

fn world(seed: u64, shards: usize, nat_fraction: f64, faulted: bool) -> WorldConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = SessionPlan::generate(
        &PopulationSpec::tiny(ChannelClass::Unpopular),
        120.0,
        &mut rng,
    );
    let mut cfg = WorldConfig::new(seed, plan, SimTime::from_secs(120));
    // Probes in three ISPs, so captures span several shards.
    cfg.probes.push(probe(Isp::Tele));
    cfg.probes.push(probe(Isp::Cnc));
    cfg.probes.push(probe(Isp::Foreign));
    cfg.nat_fraction = nat_fraction;
    if faulted {
        cfg.faults = boundary_fault_plan();
    }
    cfg.shards = shards;
    cfg.shard_threads = 2;
    cfg
}

fn assert_identical(sharded: &WorldOutput, reference: &WorldOutput, label: &str) {
    assert_eq!(sharded.sim, reference.sim, "SimStats diverged: {label}");
    assert_eq!(
        sharded.metrics, reference.metrics,
        "metrics snapshot diverged: {label}"
    );
    assert_eq!(
        sharded.records, reference.records,
        "capture bytes diverged: {label}"
    );
    assert_eq!(
        sharded.peer_stats, reference.peer_stats,
        "peer stats diverged: {label}"
    );
    assert_eq!(
        sharded.fault_marks, reference.fault_marks,
        "fault marks diverged: {label}"
    );
}

/// The five selection-policy families, for sampling the policy dimension.
fn policy_strategy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::GossipRace),
        Just(PolicySpec::TrackerOnly),
        Just(PolicySpec::BiasedLocality { cross_isp_quota: 1 }),
        Just(PolicySpec::RttThreshold {
            cutoff: SimTime::from_millis(100),
        }),
        Just(PolicySpec::DeepDivingOracle),
    ]
}

proptest! {
    #[test]
    fn sharded_runs_are_bit_identical(
        seed in 0u64..1_000_000,
        nat in prop_oneof![Just(0.0), Just(0.3)],
        faulted in any::<bool>(),
    ) {
        let reference = run_world(&world(seed, 1, nat, faulted));
        for shards in [2usize, 4] {
            let sharded = run_world(&world(seed, shards, nat, faulted));
            assert_identical(
                &sharded,
                &reference,
                &format!("seed {seed}, {shards} shards, nat {nat}, faulted {faulted}"),
            );
        }
    }

    /// The policy dimension: every selection policy — including the ones
    /// that reject candidates, rewrite the peer config, or bias tracker
    /// sampling — must stay bit-identical across shard counts, with and
    /// without the cross-shard fault preset.
    #[test]
    fn policies_are_bit_identical_across_shards(
        seed in 0u64..1_000_000,
        policy in policy_strategy(),
        faulted in any::<bool>(),
    ) {
        let mut reference_cfg = world(seed, 1, 0.0, faulted);
        reference_cfg.policy = policy;
        let reference = run_world(&reference_cfg);
        let mut sharded_cfg = world(seed, 4, 0.0, faulted);
        sharded_cfg.policy = policy;
        let sharded = run_world(&sharded_cfg);
        assert_identical(
            &sharded,
            &reference,
            &format!("seed {seed}, policy {policy:?}, faulted {faulted}"),
        );
    }
}

/// The fault preset pinned explicitly (the property above only sometimes
/// draws `faulted = true`): every fault category crossing shard
/// boundaries, 1 vs 2 vs 4 shards, including a thread count smaller than
/// the shard count.
#[test]
fn faulted_world_is_bit_identical_across_shard_counts() {
    let reference = run_world(&world(7, 1, 0.2, true));
    for (shards, threads) in [(2, 2), (4, 3), (4, 1)] {
        let mut cfg = world(7, shards, 0.2, true);
        cfg.shard_threads = threads;
        let sharded = run_world(&cfg);
        assert_identical(
            &sharded,
            &reference,
            &format!("{shards} shards / {threads} threads"),
        );
    }
}

/// Every policy family pinned explicitly under the cross-shard fault
/// preset (the property above samples the space; this nails all five at
/// one seed, including a thread count smaller than the shard count).
#[test]
fn every_policy_survives_faulted_sharding() {
    let policies = [
        PolicySpec::GossipRace,
        PolicySpec::TrackerOnly,
        PolicySpec::BiasedLocality { cross_isp_quota: 1 },
        PolicySpec::RttThreshold {
            cutoff: SimTime::from_millis(100),
        },
        PolicySpec::DeepDivingOracle,
    ];
    for policy in policies {
        let mut reference_cfg = world(11, 1, 0.2, true);
        reference_cfg.policy = policy;
        let reference = run_world(&reference_cfg);
        for (shards, threads) in [(2, 2), (4, 1)] {
            let mut cfg = world(11, shards, 0.2, true);
            cfg.policy = policy;
            cfg.shard_threads = threads;
            let sharded = run_world(&cfg);
            assert_identical(
                &sharded,
                &reference,
                &format!("{policy:?}, {shards} shards / {threads} threads"),
            );
        }
    }
}
