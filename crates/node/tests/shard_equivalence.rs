//! Property test: a sharded world is bit-identical to the single-shard
//! run — same `SimStats`, same metrics snapshot, same capture bytes, same
//! peer stats and fault marks — for 1/2/4/8 shards at the same seed, over
//! random small worlds, with and without a fault plan whose events cross
//! shard boundaries. Eight shards exceeds the populated ISP count, so
//! those runs exercise the sub-ISP host-group partition, where split
//! ISPs' directed interconnect queues are reconstructed by owner replay.

use plsim_des::SimTime;
use plsim_net::{Isp, LinkFault, LinkModel};
use plsim_node::{run_world, FaultPlan, PolicySpec, ProbeSpec, WorldConfig, WorldOutput};
use plsim_workload::{ChannelClass, PopulationSpec, SessionPlan};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fault plan that stresses every cross-shard path at once: a tracker
/// blackout (timers fan out to trackers living on several shards at the
/// same instant), a churn storm (a same-time burst of leaves/rejoins over
/// the whole population), and a link fault over the TELE–CNC interconnect
/// (a fault window that both shard media must activate at the same global
/// pop positions).
fn boundary_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .tracker_blackout(SimTime::from_secs(40), SimTime::from_secs(60))
        .churn_storm(SimTime::from_secs(70), 0.5, Some(SimTime::from_secs(15)))
        .link(LinkFault::loss_ramp(
            SimTime::from_secs(45),
            SimTime::from_secs(85),
            SimTime::from_secs(10),
            0.2,
        ))
}

/// A probe that joins early, so even these short worlds capture traffic.
fn probe(isp: Isp) -> ProbeSpec {
    ProbeSpec {
        join_s: 30.0,
        ..ProbeSpec::residential(isp)
    }
}

fn world(seed: u64, shards: usize, nat_fraction: f64, faulted: bool) -> WorldConfig {
    skewed_world(seed, shards, nat_fraction, faulted, None)
}

/// Like [`world`], with an optional ISP-weight override so the property
/// can sample heavily uneven ISP mixes (one dominant ISP is the regime
/// where sub-ISP splitting has to carry almost the whole load).
fn skewed_world(
    seed: u64,
    shards: usize,
    nat_fraction: f64,
    faulted: bool,
    isp_weights: Option<[f64; 5]>,
) -> WorldConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spec = PopulationSpec::tiny(ChannelClass::Unpopular);
    if let Some(w) = isp_weights {
        spec.isp_weights = w;
    }
    let plan = SessionPlan::generate(&spec, 120.0, &mut rng);
    let mut cfg = WorldConfig::new(seed, plan, SimTime::from_secs(120));
    // Probes in three ISPs, so captures span several shards.
    cfg.probes.push(probe(Isp::Tele));
    cfg.probes.push(probe(Isp::Cnc));
    cfg.probes.push(probe(Isp::Foreign));
    cfg.nat_fraction = nat_fraction;
    if faulted {
        cfg.faults = boundary_fault_plan();
    }
    cfg.shards = shards;
    cfg.shard_threads = 2;
    cfg
}

fn assert_identical(sharded: &WorldOutput, reference: &WorldOutput, label: &str) {
    assert_eq!(sharded.sim, reference.sim, "SimStats diverged: {label}");
    assert_eq!(
        sharded.metrics, reference.metrics,
        "metrics snapshot diverged: {label}"
    );
    assert_eq!(
        sharded.records, reference.records,
        "capture bytes diverged: {label}"
    );
    assert_eq!(
        sharded.peer_stats, reference.peer_stats,
        "peer stats diverged: {label}"
    );
    assert_eq!(
        sharded.fault_marks, reference.fault_marks,
        "fault marks diverged: {label}"
    );
}

/// The five selection-policy families, for sampling the policy dimension.
fn policy_strategy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::GossipRace),
        Just(PolicySpec::TrackerOnly),
        Just(PolicySpec::BiasedLocality { cross_isp_quota: 1 }),
        Just(PolicySpec::RttThreshold {
            cutoff: SimTime::from_millis(100),
        }),
        Just(PolicySpec::DeepDivingOracle),
    ]
}

proptest! {
    #[test]
    fn sharded_runs_are_bit_identical(
        seed in 0u64..1_000_000,
        nat in prop_oneof![Just(0.0), Just(0.3)],
        faulted in any::<bool>(),
    ) {
        let reference = run_world(&world(seed, 1, nat, faulted));
        for shards in [2usize, 4, 8] {
            let sharded = run_world(&world(seed, shards, nat, faulted));
            assert_identical(
                &sharded,
                &reference,
                &format!("seed {seed}, {shards} shards, nat {nat}, faulted {faulted}"),
            );
        }
    }

    /// The policy dimension: every selection policy — including the ones
    /// that reject candidates, rewrite the peer config, or bias tracker
    /// sampling — must stay bit-identical across shard counts, with and
    /// without the cross-shard fault preset.
    #[test]
    fn policies_are_bit_identical_across_shards(
        seed in 0u64..1_000_000,
        policy in policy_strategy(),
        faulted in any::<bool>(),
    ) {
        let mut reference_cfg = world(seed, 1, 0.0, faulted);
        reference_cfg.policy = policy;
        let reference = run_world(&reference_cfg);
        let mut sharded_cfg = world(seed, 4, 0.0, faulted);
        sharded_cfg.policy = policy;
        let sharded = run_world(&sharded_cfg);
        assert_identical(
            &sharded,
            &reference,
            &format!("seed {seed}, policy {policy:?}, faulted {faulted}"),
        );
    }
}

/// Uneven ISP mixes for the sub-ISP property: one dominant ISP (the
/// split-heavy regime), a dominant pair, and the calibrated default.
fn isp_weights_strategy() -> impl Strategy<Value = Option<[f64; 5]>> {
    prop_oneof![
        Just(None),
        Just(Some([0.85, 0.05, 0.02, 0.04, 0.04])),
        Just(Some([0.05, 0.85, 0.02, 0.04, 0.04])),
        Just(Some([0.46, 0.46, 0.02, 0.03, 0.03])),
    ]
}

proptest! {
    /// Sub-ISP equivalence: eight shards over a five-ISP world forces the
    /// host-group partition (split ISPs, owner-replayed queues), and the
    /// run must stay bit-identical to the single-shard reference across
    /// uneven ISP sizes × fault plans × all five selection policies.
    #[test]
    fn sub_isp_splits_are_bit_identical(
        seed in 0u64..1_000_000,
        weights in isp_weights_strategy(),
        policy in policy_strategy(),
        faulted in any::<bool>(),
    ) {
        let mut reference_cfg = skewed_world(seed, 1, 0.0, faulted, weights);
        reference_cfg.policy = policy;
        let reference = run_world(&reference_cfg);
        let mut sharded_cfg = skewed_world(seed, 8, 0.0, faulted, weights);
        sharded_cfg.policy = policy;
        let sharded = run_world(&sharded_cfg);
        let report = sharded.partition.as_ref().expect("8-shard run reports its partition");
        prop_assert!(report.split_isps > 0, "8 shards over 5 ISPs must split at least one");
        assert_identical(
            &sharded,
            &reference,
            &format!("seed {seed}, weights {weights:?}, policy {policy:?}, faulted {faulted}"),
        );
    }
}

/// The fault preset pinned explicitly (the property above only sometimes
/// draws `faulted = true`): every fault category crossing shard
/// boundaries, 1 vs 2 vs 4 shards, including a thread count smaller than
/// the shard count.
#[test]
fn faulted_world_is_bit_identical_across_shard_counts() {
    let reference = run_world(&world(7, 1, 0.2, true));
    for (shards, threads) in [(2, 2), (4, 3), (4, 1)] {
        let mut cfg = world(7, shards, 0.2, true);
        cfg.shard_threads = threads;
        let sharded = run_world(&cfg);
        assert_identical(
            &sharded,
            &reference,
            &format!("{shards} shards / {threads} threads"),
        );
    }
}

/// Regression: a split ISP's directed-queue backlog trajectory is
/// reconstructed event-for-event. The interconnect is squeezed so every
/// cross-ISP transfer queues, then the per-enqueue wait distribution
/// (`net.interconnect_wait_s` — one observation per enqueue, in order)
/// and the settled backlog gauge of the 8-shard sub-ISP run are compared
/// against the single-shard run's. Any replay performed out of order, at
/// the wrong capacity scale, or dropped would shift at least one wait
/// observation into a different bucket.
#[test]
fn split_isp_backlog_trajectory_matches_single_shard() {
    let squeeze = |shards: usize| {
        let mut cfg = world(19, shards, 0.0, true);
        cfg.link = LinkModel {
            interconnect_mbps: 1.5,
            ..LinkModel::default()
        };
        cfg
    };
    let reference = run_world(&squeeze(1));
    let sharded = run_world(&squeeze(8));
    let report = sharded
        .partition
        .as_ref()
        .expect("8-shard run reports its partition");
    assert!(report.split_isps > 0, "the run must split at least one ISP");
    assert!(
        report.deferred_queues > 0,
        "a split source ISP with finite queues must defer"
    );

    let waits = |out: &WorldOutput| {
        out.metrics
            .histogram("net.interconnect_wait_s")
            .expect("interconnect wait histogram")
            .clone()
    };
    let ref_waits = waits(&reference);
    assert!(
        ref_waits.count > 0,
        "the squeezed interconnect never queued — the test is vacuous"
    );
    assert_eq!(
        waits(&sharded),
        ref_waits,
        "per-enqueue wait trajectory diverged"
    );
    assert_eq!(
        sharded.metrics.gauge("net.interconnect_backlog_bits"),
        reference.metrics.gauge("net.interconnect_backlog_bits"),
        "settled backlog gauge diverged"
    );
    assert_identical(&sharded, &reference, "squeezed interconnect, 8 shards");
}

/// The acceptance pin for 10×-Paper-scale worlds: a world with the
/// `Paper10x` population preset (10× the paper's unpopular-channel
/// audience — the popular channel is 7000 viewers and belongs in the
/// `--ignored` tier) is bit-identical across 1/2/4/8 shards, with at
/// least one ISP split across shards at 8. The horizon is shortened so
/// the suite stays runnable in debug CI; the population, and therefore
/// the partition shape, is the Paper10x one.
#[test]
fn paper10x_world_is_bit_identical_across_shard_counts() {
    let paper10x = |shards: usize| {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut spec = PopulationSpec::paper_default(ChannelClass::Unpopular);
        spec.steady_viewers = 1100; // Scale::Paper10x.viewers(Unpopular)
        let plan = SessionPlan::generate(&spec, 60.0, &mut rng);
        let mut cfg = WorldConfig::new(42, plan, SimTime::from_secs(60));
        // Early joiners: the shortened horizon still captures traffic.
        for isp in [Isp::Tele, Isp::Cnc] {
            cfg.probes.push(ProbeSpec {
                join_s: 10.0,
                ..ProbeSpec::residential(isp)
            });
        }
        cfg.shards = shards;
        cfg.shard_threads = 2;
        cfg
    };
    let reference = run_world(&paper10x(1));
    assert!(reference.partition.is_none());
    for shards in [2usize, 4, 8] {
        let sharded = run_world(&paper10x(shards));
        let report = sharded
            .partition
            .as_ref()
            .expect("sharded run reports its partition");
        assert_eq!(report.shards, shards);
        if shards == 8 {
            assert!(
                report.split_isps > 0,
                "8 shards over 5 ISPs must split at least one"
            );
            assert!(
                report.deferred_queues > 0,
                "split source ISPs must defer their queues"
            );
        }
        assert_identical(&sharded, &reference, &format!("paper10x, {shards} shards"));
    }
}

/// Every policy family pinned explicitly under the cross-shard fault
/// preset (the property above samples the space; this nails all five at
/// one seed, including a thread count smaller than the shard count).
#[test]
fn every_policy_survives_faulted_sharding() {
    let policies = [
        PolicySpec::GossipRace,
        PolicySpec::TrackerOnly,
        PolicySpec::BiasedLocality { cross_isp_quota: 1 },
        PolicySpec::RttThreshold {
            cutoff: SimTime::from_millis(100),
        },
        PolicySpec::DeepDivingOracle,
    ];
    for policy in policies {
        let mut reference_cfg = world(11, 1, 0.2, true);
        reference_cfg.policy = policy;
        let reference = run_world(&reference_cfg);
        for (shards, threads) in [(2, 2), (4, 1)] {
            let mut cfg = world(11, shards, 0.2, true);
            cfg.policy = policy;
            cfg.shard_threads = threads;
            let sharded = run_world(&cfg);
            assert_identical(
                &sharded,
                &reference,
                &format!("{policy:?}, {shards} shards / {threads} threads"),
            );
        }
    }
}
