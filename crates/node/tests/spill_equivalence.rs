//! Property test: capture under a tight resident-byte budget — sealed
//! trace pages spilling to a per-run file — is bit-identical to unbounded
//! capture. Same records, same metrics snapshot, same per-probe analysis
//! reports; sharded runs (budget split across shards, spilled shard traces
//! merged by stamp) and fault plans included. The budget is set through
//! `WorldConfig::capture`, not the environment, so the reference run in
//! the same process stays unbounded.

use plsim_analysis::ProbeReport;
use plsim_des::SimTime;
use plsim_net::{AsnDirectory, Isp, LinkFault};
use plsim_node::{run_world, CaptureConfig, FaultPlan, ProbeSpec, WorldConfig, WorldOutput};
use plsim_workload::{ChannelClass, PopulationSpec, SessionPlan};
use proptest::prelude::*;
use proptest::test_rng;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Tight enough that a ~9k-record tiny world spills at least one sealed
/// page, loose enough that the run is not pathological.
const TIGHT_BUDGET: u64 = 64 * 1024;

/// Fault categories that cross capture windows: tracker blackout, churn
/// storm, and a lossy TELE–CNC interconnect.
fn boundary_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .tracker_blackout(SimTime::from_secs(40), SimTime::from_secs(60))
        .churn_storm(SimTime::from_secs(70), 0.5, Some(SimTime::from_secs(15)))
        .link(LinkFault::loss_ramp(
            SimTime::from_secs(45),
            SimTime::from_secs(85),
            SimTime::from_secs(10),
            0.2,
        ))
}

/// A probe that joins early, so the capture covers nearly the whole run.
fn probe(isp: Isp) -> ProbeSpec {
    ProbeSpec {
        join_s: 30.0,
        ..ProbeSpec::residential(isp)
    }
}

/// A world long enough (360 s, three probes) to seal capture pages, with
/// the capture budget pinned explicitly.
fn world(seed: u64, shards: usize, budget: Option<u64>, faulted: bool) -> WorldConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = SessionPlan::generate(
        &PopulationSpec::tiny(ChannelClass::Unpopular),
        360.0,
        &mut rng,
    );
    let mut cfg = WorldConfig::new(seed, plan, SimTime::from_secs(360));
    cfg.probes.push(probe(Isp::Tele));
    cfg.probes.push(probe(Isp::Cnc));
    cfg.probes.push(probe(Isp::Foreign));
    if faulted {
        cfg.faults = boundary_fault_plan();
    }
    cfg.shards = shards;
    cfg.shard_threads = 2;
    cfg.capture = CaptureConfig {
        budget,
        aggregate_window: None,
    };
    cfg
}

/// Everything the analysis layer can see must be unchanged by spilling.
fn assert_equivalent(budgeted: &WorldOutput, reference: &WorldOutput, label: &str) {
    assert!(
        budgeted.records.spilled_pages() >= 1,
        "budgeted run never spilled — the property would be vacuous: {label}"
    );
    assert_eq!(
        reference.records.spilled_pages(),
        0,
        "unbounded run spilled: {label}"
    );
    assert_eq!(
        budgeted.records, reference.records,
        "capture rows diverged under budget: {label}"
    );
    assert_eq!(
        budgeted.metrics, reference.metrics,
        "metrics snapshot diverged under budget: {label}"
    );
    assert_eq!(budgeted.sim, reference.sim, "SimStats diverged: {label}");
    assert_eq!(
        budgeted.peer_stats, reference.peer_stats,
        "peer stats diverged: {label}"
    );
    assert_eq!(
        budgeted.fault_marks, reference.fault_marks,
        "fault marks diverged: {label}"
    );

    // The full per-probe analysis — locality, response times, rank fits,
    // overlay metrics — streamed off the spilled store must match the
    // in-RAM result bit for bit (Debug formatting preserves f64 bits).
    let dir = AsnDirectory::new();
    for (&node, isp) in reference
        .probes
        .iter()
        .zip([Isp::Tele, Isp::Cnc, Isp::Foreign])
    {
        let spilled = ProbeReport::new(node, isp, &budgeted.records, &dir);
        let in_ram = ProbeReport::new(node, isp, &reference.records, &dir);
        assert_eq!(
            format!("{spilled:?}"),
            format!("{in_ram:?}"),
            "probe {node:?} analysis diverged under budget: {label}"
        );
    }
}

/// The random-seed property, sampled through the harness's strategies but
/// with an explicit case count: each case simulates two full 360 s worlds,
/// so the default 64-case budget would dominate the suite. Four random
/// (seed, faulted) draws on top of the pinned tests below keep the
/// property honest at tier-1 cost.
#[test]
fn budgeted_capture_is_bit_identical() {
    let mut rng = test_rng(concat!(
        module_path!(),
        "::budgeted_capture_is_bit_identical"
    ));
    let strat = (0u64..1_000_000, any::<bool>());
    for _ in 0..4 {
        let (seed, faulted) = strat.sample(&mut rng);
        let reference = run_world(&world(seed, 1, None, faulted));
        let budgeted = run_world(&world(seed, 1, Some(TIGHT_BUDGET), faulted));
        assert_equivalent(
            &budgeted,
            &reference,
            &format!("seed {seed}, faulted {faulted}"),
        );
    }
}

/// Sharded runs: each shard's tap gets an even share of the budget and the
/// stamp merge streams spilled shard pages; the merged store (itself under
/// budget) must equal the unbounded single-shard capture.
#[test]
fn sharded_budgeted_capture_matches_unbounded_single_shard() {
    for (shards, faulted) in [(2usize, false), (4, true)] {
        let reference = run_world(&world(7, 1, None, faulted));
        let budgeted = run_world(&world(7, shards, Some(TIGHT_BUDGET), faulted));
        assert_equivalent(
            &budgeted,
            &reference,
            &format!("{shards} shards, faulted {faulted}"),
        );
    }
}

/// The budget actually bounds resident column bytes: the spilled store
/// reports a peak far below what the unbounded run kept resident.
#[test]
fn spilling_reduces_resident_footprint() {
    let reference = run_world(&world(3, 1, None, false));
    let budgeted = run_world(&world(3, 1, Some(TIGHT_BUDGET), false));
    assert_eq!(budgeted.records, reference.records);
    // The unbounded store holds every sealed page in RAM; the budgeted one
    // holds at most the budget's worth of sealed pages (the open page and
    // the shared address arena stay resident by design).
    assert!(
        budgeted.records.spilled_pages() >= 1,
        "tight budget did not spill"
    );
    assert!(
        reference.records.peak_resident_bytes() > TIGHT_BUDGET as usize,
        "world too small for the property to bite"
    );
}
