//! # plsim-proto — PPLive protocol wire types
//!
//! The message vocabulary of the reverse-engineered PPLive 1.9 protocol as
//! described in §2 of the paper:
//!
//! * bootstrap: channel-list retrieval and per-channel join (playlink +
//!   tracker addresses);
//! * tracker interaction: peer-list queries and periodic announces;
//! * peer gossip: 20-second [`Message::PeerListRequest`] rounds that *enclose
//!   the sender's own peer list* and are answered with the neighbor's
//!   recently-connected peers (≤ 60 entries, [`PeerList::MAX_LEN`]);
//! * data exchange: chunked video divided into 1380-byte sub-pieces
//!   ([`SUB_PIECE_BYTES`]), pulled with sequence-numbered requests so that
//!   request/reply pairs can be matched offline exactly as the authors
//!   matched them in their packet traces.
//!
//! Self-addressed [`Message::Timer`] events drive node-internal clocks (the
//! gossip round, the chunk scheduler, playback).
//!
//! # Examples
//!
//! ```
//! use plsim_proto::{Message, PeerEntry, PeerList};
//! use plsim_des::NodeId;
//! use std::net::Ipv4Addr;
//!
//! let mut list = PeerList::new();
//! assert!(list.push(PeerEntry::new(NodeId(7), Ipv4Addr::new(58, 0, 0, 1))));
//! // Duplicates are rejected.
//! assert!(!list.push(PeerEntry::new(NodeId(7), Ipv4Addr::new(58, 0, 0, 1))));
//! let msg = Message::TrackerQuery { channel: plsim_proto::ChannelId(3) };
//! assert!(msg.wire_size() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod shared;
mod wire;

pub use shared::{PeerListArena, SharedPeerList};
pub use wire::WireMessage;

use plsim_des::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Size of a regular sub-piece in bytes (the paper: "sub-pieces of 1380 or
/// 690 bytes each").
pub const SUB_PIECE_BYTES: u32 = 1380;

/// Size of the small sub-piece variant in bytes.
pub const SMALL_SUB_PIECE_BYTES: u32 = 690;

/// Approximate UDP/IP + application framing overhead per message, in bytes.
pub const HEADER_BYTES: u32 = 46;

/// Bytes each peer-list entry occupies on the wire (IPv4 + port).
pub const PEER_ENTRY_BYTES: u32 = 6;

/// Identifier of a live-streaming channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u16);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Index of a media chunk within a channel's stream (one chunk per second of
/// media in this reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// The next chunk in stream order.
    #[must_use]
    pub const fn next(self) -> ChunkId {
        ChunkId(self.0 + 1)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One advertised peer: the simulation routing id plus the public address
/// that appears in captures (and is what the analysis maps to an ISP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeerEntry {
    /// Simulator routing identity.
    pub node: NodeId,
    /// Public IPv4 address.
    pub ip: Ipv4Addr,
}

impl PeerEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(node: NodeId, ip: Ipv4Addr) -> Self {
        PeerEntry { node, ip }
    }
}

/// A peer list as carried by tracker responses and gossip replies.
///
/// Invariants (enforced by construction and checked by property tests):
/// at most [`PeerList::MAX_LEN`] entries, no duplicate nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerList {
    entries: Vec<PeerEntry>,
}

impl PeerList {
    /// "A peer list usually contains no more than 60 IP addresses of peers."
    pub const MAX_LEN: usize = 60;

    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        PeerList::default()
    }

    /// Builds a list from candidates, keeping the first `MAX_LEN` unique
    /// entries.
    pub fn from_candidates<I: IntoIterator<Item = PeerEntry>>(candidates: I) -> Self {
        let mut list = PeerList::new();
        for entry in candidates {
            if list.is_full() {
                break;
            }
            list.push(entry);
        }
        list
    }

    /// Appends an entry unless the list is full or already contains the
    /// node. Returns whether the entry was added.
    pub fn push(&mut self, entry: PeerEntry) -> bool {
        if self.is_full() || self.contains(entry.node) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Whether the list holds `node`.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the list is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= Self::MAX_LEN
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, PeerEntry> {
        self.entries.iter()
    }

    /// The entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PeerEntry] {
        &self.entries
    }
}

impl<'a> IntoIterator for &'a PeerList {
    type Item = &'a PeerEntry;
    type IntoIter = std::slice::Iter<'a, PeerEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<PeerEntry> for PeerList {
    /// Collects candidates, silently truncating to [`PeerList::MAX_LEN`]
    /// unique entries like [`PeerList::from_candidates`].
    fn from_iter<I: IntoIterator<Item = PeerEntry>>(iter: I) -> Self {
        PeerList::from_candidates(iter)
    }
}

/// Node-internal timer kinds (never cross the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// The node comes online and starts its bootstrap sequence.
    Join,
    /// Retry of an unanswered bootstrap request (e.g. the bootstrap server
    /// was down); only acted on while the node is online but not started.
    JoinRetry,
    /// The node departs (churn).
    Leave,
    /// 20-second neighbor peer-list gossip round.
    GossipRound,
    /// 5-minute tracker re-query round.
    TrackerRound,
    /// Periodic announce (keepalive) to trackers.
    AnnounceRound,
    /// Chunk-request scheduling tick.
    Scheduler,
    /// Playback advance tick.
    Playback,
    /// Stream source produces the next chunk.
    ProduceChunk,
    /// Neighbor-table maintenance (timeouts, slot replacement).
    Maintenance,
}

/// Every payload the simulation can carry: protocol messages plus timers.
///
/// Peer-list payloads are [`SharedPeerList`]s, so cloning a message on the
/// hot path bumps an arena refcount instead of deep-copying a
/// `Vec<PeerEntry>`; the DES kernel's event pool recycles the slots that
/// carry these payloads, making the steady-state send/receive loop
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → bootstrap: request the active channel list.
    BootstrapRequest,
    /// Bootstrap → client: the active channels.
    BootstrapResponse {
        /// Channels currently on air.
        channels: Vec<ChannelId>,
    },
    /// Client → bootstrap: request playlink + trackers for one channel.
    JoinRequest {
        /// The chosen channel.
        channel: ChannelId,
    },
    /// Bootstrap → client: tracker set for the channel (one tracker per
    /// deployed tracker group).
    JoinResponse {
        /// The channel being joined.
        channel: ChannelId,
        /// One tracker address per group.
        trackers: Vec<PeerEntry>,
    },
    /// Client → tracker: request an active peer list.
    TrackerQuery {
        /// Channel of interest.
        channel: ChannelId,
    },
    /// Client → tracker: request a peer list with an ISP-locality hint
    /// (the "Deep Diving" managed-locality protocol extension). The
    /// tracker fills up to `want_same_isp` slots with members from the
    /// requester's ISP before falling back to the whole pool.
    TrackerQueryBiased {
        /// Channel of interest.
        channel: ChannelId,
        /// How many same-ISP entries the client asks for.
        want_same_isp: u16,
    },
    /// Tracker → client: random sample of active peers.
    TrackerResponse {
        /// Channel of interest.
        channel: ChannelId,
        /// Up to 60 active peers.
        peers: SharedPeerList,
    },
    /// Client → tracker: periodic membership announce.
    Announce {
        /// Channel the client is watching.
        channel: ChannelId,
    },
    /// Client → peer: open a neighbor relationship.
    Handshake {
        /// Channel the client is watching.
        channel: ChannelId,
    },
    /// Peer → client: accept or refuse the handshake.
    HandshakeAck {
        /// Channel in question.
        channel: ChannelId,
        /// Whether the peer accepted (it may be at its neighbor cap).
        accepted: bool,
    },
    /// Client → neighbor: gossip round; "sending the peer list maintained by
    /// itself" (§2), answered with the neighbor's list.
    PeerListRequest {
        /// Channel in question.
        channel: ChannelId,
        /// The requester's own current peer list, enclosed per protocol.
        my_peers: SharedPeerList,
        /// Correlates the eventual response.
        req_id: u64,
    },
    /// Neighbor → client: the neighbor's recently-connected peers.
    PeerListResponse {
        /// Channel in question.
        channel: ChannelId,
        /// The neighbor's peer list (≤ 60 entries).
        peers: SharedPeerList,
        /// Echo of the request id.
        req_id: u64,
    },
    /// Client → neighbor: pull `count` sub-pieces of `chunk` starting at
    /// sub-piece `offset`.
    DataRequest {
        /// Channel in question.
        channel: ChannelId,
        /// Requested chunk.
        chunk: ChunkId,
        /// First sub-piece index.
        offset: u16,
        /// Number of sub-pieces requested.
        count: u16,
        /// Requester-unique sequence number for req/reply matching.
        seq: u64,
    },
    /// Neighbor → client: the requested sub-pieces.
    DataReply {
        /// Chunk delivered.
        chunk: ChunkId,
        /// First sub-piece index.
        offset: u16,
        /// Number of sub-pieces delivered.
        count: u16,
        /// Echo of the request sequence number.
        seq: u64,
    },
    /// Neighbor → client: the request is refused — either the neighbor
    /// does not hold the data (`busy == false`) or its upload queue is
    /// saturated (`busy == true`).
    DataReject {
        /// Chunk that was requested.
        chunk: ChunkId,
        /// Echo of the request sequence number.
        seq: u64,
        /// True when the refusal is due to overload, not missing data.
        busy: bool,
    },
    /// Client → neighbor/tracker: graceful departure.
    Goodbye,
    /// Self-scheduled node-internal timer.
    Timer(TimerKind),
}

impl Message {
    /// Approximate on-the-wire size in bytes, used by the medium for
    /// serialization delay and by the capture layer for byte accounting.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        match self {
            Message::BootstrapRequest | Message::JoinRequest { .. } => HEADER_BYTES,
            Message::BootstrapResponse { channels } => HEADER_BYTES + 2 * channels.len() as u32,
            Message::JoinResponse { trackers, .. } => {
                HEADER_BYTES + PEER_ENTRY_BYTES * trackers.len() as u32
            }
            Message::TrackerQuery { .. } | Message::Announce { .. } => HEADER_BYTES,
            Message::TrackerQueryBiased { .. } => HEADER_BYTES + 2,
            Message::TrackerResponse { peers, .. } | Message::PeerListResponse { peers, .. } => {
                HEADER_BYTES + PEER_ENTRY_BYTES * peers.len() as u32
            }
            Message::PeerListRequest { my_peers, .. } => {
                HEADER_BYTES + PEER_ENTRY_BYTES * my_peers.len() as u32
            }
            Message::Handshake { .. } | Message::HandshakeAck { .. } => HEADER_BYTES,
            Message::DataRequest { .. } => HEADER_BYTES + 16,
            Message::DataReply { count, .. } => {
                HEADER_BYTES + 12 + u32::from(*count) * SUB_PIECE_BYTES
            }
            Message::DataReject { .. } => HEADER_BYTES + 12,
            Message::Goodbye => HEADER_BYTES,
            Message::Timer(_) => 0,
        }
    }

    /// Number of media payload bytes this message carries (only data replies
    /// carry any).
    #[must_use]
    pub fn payload_bytes(&self) -> u32 {
        match self {
            Message::DataReply { count, .. } => u32::from(*count) * SUB_PIECE_BYTES,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u32) -> PeerEntry {
        PeerEntry::new(NodeId(n), Ipv4Addr::new(58, 0, 0, (n % 250) as u8 + 1))
    }

    #[test]
    fn peer_list_caps_at_sixty() {
        let list: PeerList = (0..200).map(entry).collect();
        assert_eq!(list.len(), PeerList::MAX_LEN);
        assert!(list.is_full());
    }

    #[test]
    fn peer_list_rejects_duplicates() {
        let mut list = PeerList::new();
        assert!(list.push(entry(1)));
        assert!(!list.push(entry(1)));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn from_candidates_dedupes() {
        let list = PeerList::from_candidates([entry(1), entry(2), entry(1), entry(3)]);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn data_reply_wire_size_scales_with_subpieces() {
        let small = Message::DataReply {
            chunk: ChunkId(0),
            offset: 0,
            count: 1,
            seq: 0,
        };
        let large = Message::DataReply {
            chunk: ChunkId(0),
            offset: 0,
            count: 7,
            seq: 0,
        };
        assert_eq!(large.wire_size() - small.wire_size(), 6 * SUB_PIECE_BYTES);
        assert_eq!(large.payload_bytes(), 7 * SUB_PIECE_BYTES);
    }

    #[test]
    fn timers_have_no_wire_size() {
        assert_eq!(Message::Timer(TimerKind::GossipRound).wire_size(), 0);
    }

    #[test]
    fn biased_tracker_query_carries_its_hint_bytes() {
        let plain = Message::TrackerQuery {
            channel: ChannelId(1),
        };
        let biased = Message::TrackerQueryBiased {
            channel: ChannelId(1),
            want_same_isp: 60,
        };
        assert_eq!(biased.wire_size(), plain.wire_size() + 2);
        assert_eq!(biased.payload_bytes(), 0);
    }

    #[test]
    fn gossip_request_carries_own_list_size() {
        let my_peers: SharedPeerList = (0..10).map(entry).collect();
        let msg = Message::PeerListRequest {
            channel: ChannelId(1),
            my_peers,
            req_id: 9,
        };
        assert_eq!(msg.wire_size(), HEADER_BYTES + 10 * PEER_ENTRY_BYTES);
    }

    #[test]
    fn chunk_id_next_increments() {
        assert_eq!(ChunkId(41).next(), ChunkId(42));
    }
}
