//! Zero-copy peer lists: [`PeerListArena`] and [`SharedPeerList`].
//!
//! Peer lists are the hot payload of the protocol: every tracker reply and
//! every 20-second gossip round carries one, and at paper scale the owned
//! [`PeerList`] path clones its `Vec<PeerEntry>` once per message hop. A
//! [`SharedPeerList`] instead holds a refcounted handle into a shared
//! [`PeerListArena`] (a [`plsim_telemetry::BlockArena`] of reusable ≤ 60
//! entry blocks): cloning the message bumps a counter, dropping it returns
//! the block to the arena's free list with its capacity intact. Together
//! with the DES kernel's `EventPool` (which recycles the event slots that
//! carry [`Message`] payloads) the steady-state send/receive loop
//! allocates nothing.
//!
//! Tests and cold paths that have no arena at hand can keep using owned
//! lists: [`SharedPeerList`] also has an inline representation, and
//! `From<PeerList>` / `FromIterator<PeerEntry>` build it directly. The two
//! representations compare equal whenever they resolve to the same
//! entries, so the interned path is a drop-in replacement.

use crate::{PeerEntry, PeerList};
use plsim_telemetry::BlockArena;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A shared, refcounted arena of peer-list blocks.
///
/// One arena is created per world and handed to every peer node and
/// tracker; cloning the handle is an `Rc` bump. The arena is
/// single-threaded by design — the simulation kernel is sequential, and
/// parallel experiment runs build one world (and thus one arena) per job.
#[derive(Clone, Default)]
pub struct PeerListArena {
    inner: Rc<RefCell<BlockArena<PeerEntry>>>,
}

impl PeerListArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        PeerListArena::default()
    }

    /// Interns `candidates` as a new block, keeping the first
    /// [`PeerList::MAX_LEN`] unique entries — the same semantics as
    /// [`PeerList::from_candidates`], without the per-list allocation once
    /// the arena has warmed up.
    pub fn intern<I: IntoIterator<Item = PeerEntry>>(&self, candidates: I) -> SharedPeerList {
        let mut len = 0u16;
        let block = self.inner.borrow_mut().intern_with(|v| {
            for entry in candidates {
                if v.len() >= PeerList::MAX_LEN {
                    break;
                }
                if !v.iter().any(|e| e.node == entry.node) {
                    v.push(entry);
                }
            }
            len = v.len() as u16;
        });
        SharedPeerList {
            repr: Repr::Arena {
                arena: self.clone(),
                block,
                len,
            },
        }
    }

    /// Blocks currently holding a live list (outstanding handles).
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.inner.borrow().live_blocks()
    }

    /// High-water mark of simultaneously live blocks — the warmed
    /// working-set size after which interning no longer allocates.
    #[must_use]
    pub fn peak_live_blocks(&self) -> usize {
        self.inner.borrow().peak_live_blocks()
    }

    /// Bytes of heap currently held by the arena.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.inner.borrow().heap_bytes()
    }

    fn same_arena(&self, other: &PeerListArena) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for PeerListArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("PeerListArena")
            .field("live_blocks", &inner.live_blocks())
            .field("free_blocks", &inner.free_blocks())
            .field("peak_live_blocks", &inner.peak_live_blocks())
            .finish()
    }
}

enum Repr {
    /// Owned entries — cold paths and arena-less tests.
    Inline(PeerList),
    /// A refcounted block in a shared arena.
    Arena {
        arena: PeerListArena,
        block: u32,
        len: u16,
    },
}

/// A peer list payload that is either owned ([`PeerList`]) or a cheap
/// refcounted handle into a [`PeerListArena`] — see the module docs.
pub struct SharedPeerList {
    repr: Repr,
}

impl SharedPeerList {
    /// Resolves the entries and passes them to `f`.
    ///
    /// Closure-based access keeps the arena borrow scoped: the interned
    /// representation must release its `RefCell` borrow before control
    /// returns to code that might intern or drop other lists.
    pub fn with<R>(&self, f: impl FnOnce(&[PeerEntry]) -> R) -> R {
        match &self.repr {
            Repr::Inline(list) => f(list.as_slice()),
            Repr::Arena { arena, block, .. } => f(arena.inner.borrow().get(*block)),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(list) => list.len(),
            Repr::Arena { len, .. } => usize::from(*len),
        }
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the list holds `node`.
    #[must_use]
    pub fn contains(&self, node: plsim_des::NodeId) -> bool {
        self.with(|entries| entries.iter().any(|e| e.node == node))
    }

    /// Copies the entries into an owned [`PeerList`].
    #[must_use]
    pub fn to_list(&self) -> PeerList {
        self.with(|entries| PeerList::from_candidates(entries.iter().copied()))
    }
}

impl Default for SharedPeerList {
    /// An empty inline list (no arena required).
    fn default() -> Self {
        SharedPeerList {
            repr: Repr::Inline(PeerList::new()),
        }
    }
}

impl Clone for SharedPeerList {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Inline(list) => SharedPeerList {
                repr: Repr::Inline(list.clone()),
            },
            Repr::Arena { arena, block, len } => {
                arena.inner.borrow_mut().retain(*block);
                SharedPeerList {
                    repr: Repr::Arena {
                        arena: arena.clone(),
                        block: *block,
                        len: *len,
                    },
                }
            }
        }
    }
}

impl Drop for SharedPeerList {
    fn drop(&mut self) {
        if let Repr::Arena { arena, block, .. } = &self.repr {
            arena.inner.borrow_mut().release(*block);
        }
    }
}

impl From<PeerList> for SharedPeerList {
    fn from(list: PeerList) -> Self {
        SharedPeerList {
            repr: Repr::Inline(list),
        }
    }
}

impl FromIterator<PeerEntry> for SharedPeerList {
    /// Collects into an owned inline list, truncating to
    /// [`PeerList::MAX_LEN`] unique entries like
    /// [`PeerList::from_candidates`]. Use [`PeerListArena::intern`] on the
    /// hot path instead.
    fn from_iter<I: IntoIterator<Item = PeerEntry>>(iter: I) -> Self {
        SharedPeerList::from(PeerList::from_candidates(iter))
    }
}

impl PartialEq for SharedPeerList {
    /// Representation-independent: two lists are equal when they resolve
    /// to the same entries in the same order.
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a == b,
            (
                Repr::Arena {
                    arena: aa,
                    block: ab,
                    len: al,
                },
                Repr::Arena {
                    arena: ba,
                    block: bb,
                    len: bl,
                },
            ) => {
                if al != bl {
                    return false;
                }
                if aa.same_arena(ba) {
                    let inner = aa.inner.borrow();
                    return ab == bb || inner.get(*ab) == inner.get(*bb);
                }
                aa.inner.borrow().get(*ab) == ba.inner.borrow().get(*bb)
            }
            _ => {
                if self.len() != other.len() {
                    return false;
                }
                self.with(|a| other.with(|b| a == b))
            }
        }
    }
}

impl Eq for SharedPeerList {}

impl fmt::Debug for SharedPeerList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match &self.repr {
            Repr::Inline(_) => "inline",
            Repr::Arena { .. } => "arena",
        };
        self.with(|entries| {
            f.debug_struct("SharedPeerList")
                .field("repr", &tag)
                .field("entries", &entries)
                .finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsim_des::NodeId;
    use std::net::Ipv4Addr;

    fn entry(n: u32) -> PeerEntry {
        PeerEntry::new(NodeId(n), Ipv4Addr::new(58, 0, 0, (n % 250) as u8 + 1))
    }

    #[test]
    fn interned_matches_owned_semantics() {
        let arena = PeerListArena::new();
        let candidates = [entry(1), entry(2), entry(1), entry(3)];
        let shared = arena.intern(candidates);
        let owned = PeerList::from_candidates(candidates);
        assert_eq!(shared.len(), 3);
        shared.with(|s| assert_eq!(s, owned.as_slice()));
        assert_eq!(shared, SharedPeerList::from(owned));
    }

    #[test]
    fn interned_caps_at_max_len() {
        let arena = PeerListArena::new();
        let shared = arena.intern((0..200).map(entry));
        assert_eq!(shared.len(), PeerList::MAX_LEN);
    }

    #[test]
    fn clone_and_drop_recycle_blocks() {
        let arena = PeerListArena::new();
        let a = arena.intern((0..5).map(entry));
        let b = a.clone();
        assert_eq!(arena.live_blocks(), 1);
        drop(a);
        assert_eq!(arena.live_blocks(), 1, "clone keeps the block alive");
        drop(b);
        assert_eq!(arena.live_blocks(), 0);
        // The freed block is reused, so the arena does not grow.
        let _c = arena.intern((0..5).map(entry));
        assert_eq!(arena.peak_live_blocks(), 1);
    }

    #[test]
    fn inline_and_arena_compare_equal() {
        let arena = PeerListArena::new();
        let interned = arena.intern((0..4).map(entry));
        let inline: SharedPeerList = (0..4).map(entry).collect();
        assert_eq!(interned, inline);
        assert_eq!(inline, interned);
        assert!(interned.contains(NodeId(2)));
        assert!(!interned.contains(NodeId(9)));
        let different: SharedPeerList = (0..5).map(entry).collect();
        assert_ne!(interned, different);
    }

    #[test]
    fn to_list_round_trips() {
        let arena = PeerListArena::new();
        let interned = arena.intern((0..7).map(entry));
        let owned = interned.to_list();
        assert_eq!(SharedPeerList::from(owned), interned);
    }
}
