//! A `Send` mirror of [`Message`] for crossing shard boundaries.
//!
//! [`Message`] itself is deliberately `!Send`: its peer-list payloads are
//! [`SharedPeerList`]s backed by a thread-local [`PeerListArena`] (an `Rc`
//! refcount bump per clone on the hot path). A sharded world, however, must
//! hand messages between threads. [`WireMessage`] is the materialised form
//! that travels: peer lists are flattened to owned [`PeerList`]s — exactly
//! the bytes the message carries on the simulated wire — and re-interned
//! into the *receiving* shard's arena on ingest. Because
//! [`SharedPeerList`]'s equality is representation-independent and interning
//! preserves (≤ 60, deduped) list contents, a message that round-trips
//! through its wire form is indistinguishable from one delivered locally.

use crate::{ChannelId, ChunkId, Message, PeerEntry, PeerList, PeerListArena, TimerKind};

/// [`Message`], with every arena-backed peer list flattened to an owned
/// [`PeerList`] so the value is `Send`. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Mirror of [`Message::BootstrapRequest`].
    BootstrapRequest,
    /// Mirror of [`Message::BootstrapResponse`].
    BootstrapResponse {
        /// Channels currently on air.
        channels: Vec<ChannelId>,
    },
    /// Mirror of [`Message::JoinRequest`].
    JoinRequest {
        /// The chosen channel.
        channel: ChannelId,
    },
    /// Mirror of [`Message::JoinResponse`].
    JoinResponse {
        /// The channel being joined.
        channel: ChannelId,
        /// One tracker address per group.
        trackers: Vec<PeerEntry>,
    },
    /// Mirror of [`Message::TrackerQuery`].
    TrackerQuery {
        /// Channel of interest.
        channel: ChannelId,
    },
    /// Mirror of [`Message::TrackerQueryBiased`].
    TrackerQueryBiased {
        /// Channel of interest.
        channel: ChannelId,
        /// How many same-ISP entries the client asks for.
        want_same_isp: u16,
    },
    /// Mirror of [`Message::TrackerResponse`].
    TrackerResponse {
        /// Channel of interest.
        channel: ChannelId,
        /// Up to 60 active peers, flattened.
        peers: PeerList,
    },
    /// Mirror of [`Message::Announce`].
    Announce {
        /// Channel the client is watching.
        channel: ChannelId,
    },
    /// Mirror of [`Message::Handshake`].
    Handshake {
        /// Channel the client is watching.
        channel: ChannelId,
    },
    /// Mirror of [`Message::HandshakeAck`].
    HandshakeAck {
        /// Channel in question.
        channel: ChannelId,
        /// Whether the peer accepted.
        accepted: bool,
    },
    /// Mirror of [`Message::PeerListRequest`].
    PeerListRequest {
        /// Channel in question.
        channel: ChannelId,
        /// The requester's own peer list, flattened.
        my_peers: PeerList,
        /// Correlates the eventual response.
        req_id: u64,
    },
    /// Mirror of [`Message::PeerListResponse`].
    PeerListResponse {
        /// Channel in question.
        channel: ChannelId,
        /// The neighbor's peer list, flattened.
        peers: PeerList,
        /// Echo of the request id.
        req_id: u64,
    },
    /// Mirror of [`Message::DataRequest`].
    DataRequest {
        /// Channel in question.
        channel: ChannelId,
        /// Requested chunk.
        chunk: ChunkId,
        /// First sub-piece index.
        offset: u16,
        /// Number of sub-pieces requested.
        count: u16,
        /// Requester-unique sequence number.
        seq: u64,
    },
    /// Mirror of [`Message::DataReply`].
    DataReply {
        /// Chunk delivered.
        chunk: ChunkId,
        /// First sub-piece index.
        offset: u16,
        /// Number of sub-pieces delivered.
        count: u16,
        /// Echo of the request sequence number.
        seq: u64,
    },
    /// Mirror of [`Message::DataReject`].
    DataReject {
        /// Chunk that was requested.
        chunk: ChunkId,
        /// Echo of the request sequence number.
        seq: u64,
        /// True when the refusal is due to overload.
        busy: bool,
    },
    /// Mirror of [`Message::Goodbye`].
    Goodbye,
    /// Mirror of [`Message::Timer`]. Timers never cross the wire in the
    /// protocol, but the mirror is total so conversion never panics.
    Timer(TimerKind),
}

impl Message {
    /// Flattens this message into its `Send` wire form (arena-backed peer
    /// lists become owned [`PeerList`]s).
    #[must_use]
    pub fn into_wire(self) -> WireMessage {
        match self {
            Message::BootstrapRequest => WireMessage::BootstrapRequest,
            Message::BootstrapResponse { channels } => WireMessage::BootstrapResponse { channels },
            Message::JoinRequest { channel } => WireMessage::JoinRequest { channel },
            Message::JoinResponse { channel, trackers } => {
                WireMessage::JoinResponse { channel, trackers }
            }
            Message::TrackerQuery { channel } => WireMessage::TrackerQuery { channel },
            Message::TrackerQueryBiased {
                channel,
                want_same_isp,
            } => WireMessage::TrackerQueryBiased {
                channel,
                want_same_isp,
            },
            Message::TrackerResponse { channel, peers } => WireMessage::TrackerResponse {
                channel,
                peers: peers.to_list(),
            },
            Message::Announce { channel } => WireMessage::Announce { channel },
            Message::Handshake { channel } => WireMessage::Handshake { channel },
            Message::HandshakeAck { channel, accepted } => {
                WireMessage::HandshakeAck { channel, accepted }
            }
            Message::PeerListRequest {
                channel,
                my_peers,
                req_id,
            } => WireMessage::PeerListRequest {
                channel,
                my_peers: my_peers.to_list(),
                req_id,
            },
            Message::PeerListResponse {
                channel,
                peers,
                req_id,
            } => WireMessage::PeerListResponse {
                channel,
                peers: peers.to_list(),
                req_id,
            },
            Message::DataRequest {
                channel,
                chunk,
                offset,
                count,
                seq,
            } => WireMessage::DataRequest {
                channel,
                chunk,
                offset,
                count,
                seq,
            },
            Message::DataReply {
                chunk,
                offset,
                count,
                seq,
            } => WireMessage::DataReply {
                chunk,
                offset,
                count,
                seq,
            },
            Message::DataReject { chunk, seq, busy } => {
                WireMessage::DataReject { chunk, seq, busy }
            }
            Message::Goodbye => WireMessage::Goodbye,
            Message::Timer(kind) => WireMessage::Timer(kind),
        }
    }
}

impl WireMessage {
    /// Rebuilds the in-simulation [`Message`], interning peer lists into the
    /// receiving shard's `arena`.
    #[must_use]
    pub fn into_message(self, arena: &PeerListArena) -> Message {
        match self {
            WireMessage::BootstrapRequest => Message::BootstrapRequest,
            WireMessage::BootstrapResponse { channels } => Message::BootstrapResponse { channels },
            WireMessage::JoinRequest { channel } => Message::JoinRequest { channel },
            WireMessage::JoinResponse { channel, trackers } => {
                Message::JoinResponse { channel, trackers }
            }
            WireMessage::TrackerQuery { channel } => Message::TrackerQuery { channel },
            WireMessage::TrackerQueryBiased {
                channel,
                want_same_isp,
            } => Message::TrackerQueryBiased {
                channel,
                want_same_isp,
            },
            WireMessage::TrackerResponse { channel, peers } => Message::TrackerResponse {
                channel,
                peers: arena.intern(peers.iter().copied()),
            },
            WireMessage::Announce { channel } => Message::Announce { channel },
            WireMessage::Handshake { channel } => Message::Handshake { channel },
            WireMessage::HandshakeAck { channel, accepted } => {
                Message::HandshakeAck { channel, accepted }
            }
            WireMessage::PeerListRequest {
                channel,
                my_peers,
                req_id,
            } => Message::PeerListRequest {
                channel,
                my_peers: arena.intern(my_peers.iter().copied()),
                req_id,
            },
            WireMessage::PeerListResponse {
                channel,
                peers,
                req_id,
            } => Message::PeerListResponse {
                channel,
                peers: arena.intern(peers.iter().copied()),
                req_id,
            },
            WireMessage::DataRequest {
                channel,
                chunk,
                offset,
                count,
                seq,
            } => Message::DataRequest {
                channel,
                chunk,
                offset,
                count,
                seq,
            },
            WireMessage::DataReply {
                chunk,
                offset,
                count,
                seq,
            } => Message::DataReply {
                chunk,
                offset,
                count,
                seq,
            },
            WireMessage::DataReject { chunk, seq, busy } => {
                Message::DataReject { chunk, seq, busy }
            }
            WireMessage::Goodbye => Message::Goodbye,
            WireMessage::Timer(kind) => Message::Timer(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsim_des::NodeId;
    use std::net::Ipv4Addr;

    fn entry(n: u32) -> PeerEntry {
        PeerEntry::new(NodeId(n), Ipv4Addr::new(58, 0, 0, (n % 250) as u8 + 1))
    }

    fn assert_send<T: Send>() {}

    #[test]
    fn wire_form_is_send() {
        assert_send::<WireMessage>();
    }

    #[test]
    fn peer_list_messages_round_trip_through_wire_form() {
        let sender_arena = PeerListArena::new();
        let receiver_arena = PeerListArena::new();
        let peers = sender_arena.intern((0..25).map(entry));
        let original = Message::TrackerResponse {
            channel: ChannelId(3),
            peers,
        };
        let size = original.wire_size();
        let round_tripped = original.clone().into_wire().into_message(&receiver_arena);
        assert_eq!(round_tripped, original);
        assert_eq!(round_tripped.wire_size(), size);
    }

    #[test]
    fn plain_messages_round_trip_unchanged() {
        let arena = PeerListArena::new();
        for msg in [
            Message::BootstrapRequest,
            Message::HandshakeAck {
                channel: ChannelId(1),
                accepted: true,
            },
            Message::DataRequest {
                channel: ChannelId(1),
                chunk: ChunkId(9),
                offset: 3,
                count: 7,
                seq: 41,
            },
            Message::Goodbye,
            Message::Timer(TimerKind::GossipRound),
            Message::TrackerQueryBiased {
                channel: ChannelId(2),
                want_same_isp: 60,
            },
        ] {
            assert_eq!(msg.clone().into_wire().into_message(&arena), msg);
        }
    }

    #[test]
    fn gossip_request_keeps_enclosed_list_through_wire_form() {
        let arena = PeerListArena::new();
        let my_peers = arena.intern((0..60).map(entry));
        let msg = Message::PeerListRequest {
            channel: ChannelId(2),
            my_peers,
            req_id: 7,
        };
        let back = msg.clone().into_wire().into_message(&arena);
        assert_eq!(back, msg);
    }
}
