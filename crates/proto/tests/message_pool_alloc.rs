//! Allocation audit of the zero-copy message path: once the arena's block
//! pool is warm, a steady-state loop of intern → enclose-in-message →
//! clone → drop must not touch the heap at all. This is the node layer's
//! analogue of the kernel's `alloc_probe` example — the whole point of
//! interning peer lists is that the gossip hot loop recycles arena blocks
//! instead of allocating a fresh `Vec` per message.

use plsim_des::NodeId;
use plsim_proto::{ChannelId, Message, PeerEntry, PeerList, PeerListArena};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn entry(n: u32) -> PeerEntry {
    PeerEntry::new(NodeId(n), Ipv4Addr::new(58, 0, (n >> 8) as u8, n as u8))
}

/// One steady-state round: intern a full-sized list, wrap it in the three
/// list-bearing protocol messages, clone them as the kernel's event slots
/// would, and drop everything back into the arena's free list.
fn round(arena: &PeerListArena, entries: &[PeerEntry], req_id: u64) -> u64 {
    let peers = arena.intern(entries.iter().copied());
    let tracker = Message::TrackerResponse {
        channel: ChannelId(1),
        peers: peers.clone(),
    };
    let request = Message::PeerListRequest {
        channel: ChannelId(1),
        my_peers: peers.clone(),
        req_id,
    };
    let response = Message::PeerListResponse {
        channel: ChannelId(1),
        peers,
        req_id,
    };
    let delivered = response.clone();
    black_box(&delivered);
    u64::from(tracker.wire_size() + request.wire_size() + response.wire_size())
}

#[test]
fn steady_state_message_loop_allocates_nothing() {
    let arena = PeerListArena::new();
    let entries: Vec<PeerEntry> = (0..PeerList::MAX_LEN as u32).map(entry).collect();

    // Warm-up: grow the arena's block pool, its free list, and each
    // block's entry capacity to their steady sizes.
    let mut checksum = 0u64;
    for i in 0..256 {
        checksum = checksum.wrapping_add(round(&arena, &entries, i));
    }

    let live_before = arena.live_blocks();
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        checksum = checksum.wrapping_add(round(&arena, &entries, i));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    black_box(checksum);

    assert_eq!(
        after - before,
        0,
        "warm intern/clone/drop loop must not allocate"
    );
    // Every block released by the loop went back to the free list.
    assert_eq!(arena.live_blocks(), live_before);
}
