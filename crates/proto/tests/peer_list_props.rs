//! Property tests for peer-list invariants.

use plsim_des::NodeId;
use plsim_proto::{PeerEntry, PeerList};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn entry(n: u32) -> PeerEntry {
    PeerEntry::new(
        NodeId(n),
        Ipv4Addr::new(58, (n >> 16) as u8, (n >> 8) as u8, n as u8),
    )
}

proptest! {
    /// Whatever is pushed, a peer list never exceeds MAX_LEN and never holds
    /// the same node twice.
    #[test]
    fn list_invariants_hold(ids in proptest::collection::vec(0u32..500, 0..300)) {
        let list: PeerList = ids.iter().map(|&n| entry(n)).collect();
        prop_assert!(list.len() <= PeerList::MAX_LEN);
        let mut seen = HashSet::new();
        for e in &list {
            prop_assert!(seen.insert(e.node), "duplicate {:?}", e.node);
        }
    }

    /// Everything that fits and is unique is kept, in first-seen order.
    #[test]
    fn list_preserves_first_seen_order(ids in proptest::collection::vec(0u32..100, 0..80)) {
        let list: PeerList = ids.iter().map(|&n| entry(n)).collect();
        let mut expected = Vec::new();
        for &n in &ids {
            if expected.len() >= PeerList::MAX_LEN {
                break;
            }
            if !expected.contains(&n) {
                expected.push(n);
            }
        }
        let got: Vec<u32> = list.iter().map(|e| e.node.0).collect();
        prop_assert_eq!(got, expected);
    }

    /// `contains` agrees with iteration.
    #[test]
    fn contains_is_consistent(ids in proptest::collection::vec(0u32..50, 0..50), probe in 0u32..60) {
        let list: PeerList = ids.iter().map(|&n| entry(n)).collect();
        let by_iter = list.iter().any(|e| e.node == NodeId(probe));
        prop_assert_eq!(list.contains(NodeId(probe)), by_iter);
    }
}
