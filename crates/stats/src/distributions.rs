//! Random variates for workload synthesis: Weibull (the CCDF family of the
//! stretched exponential), lognormal session lengths, and exponential
//! inter-arrivals.

use rand::rngs::SmallRng;
use rand::Rng;

/// Samples a Weibull(shape, scale) variate by inverse transform.
///
/// The stretched-exponential rank distribution of the paper corresponds to a
/// Weibull-shaped CCDF, so Weibull draws generate synthetic per-peer
/// contributions that refit to an SE model (experiment W1).
///
/// # Panics
///
/// Panics if `shape` or `scale` is not positive.
#[must_use]
pub fn weibull(rng: &mut SmallRng, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "weibull params must be positive"
    );
    let u: f64 = rng.random();
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Samples an Exp(mean) variate (inter-arrival times).
///
/// # Panics
///
/// Panics if `mean` is not positive.
#[must_use]
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Samples a lognormal variate with the given parameters of the underlying
/// normal (session durations: most short, a long tail of marathon viewers).
#[must_use]
pub fn lognormal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Standard normal via Box–Muller.
#[must_use]
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn weibull_mean_matches_theory() {
        // shape=1 degenerates to Exp(scale): mean = scale.
        let mut r = rng();
        let n = 20_000;
        let m: f64 = (0..n).map(|_| weibull(&mut r, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.1, "mean = {m}");
    }

    #[test]
    fn weibull_small_shape_is_heavier_tailed() {
        let mut r = rng();
        let n = 20_000;
        let max_small = (0..n)
            .map(|_| weibull(&mut r, 0.4, 1.0))
            .fold(0.0, f64::max);
        let max_one = (0..n)
            .map(|_| weibull(&mut r, 1.0, 1.0))
            .fold(0.0, f64::max);
        assert!(max_small > max_one);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng();
        let n = 20_000;
        let m: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((m - 5.0).abs() < 0.2, "mean = {m}");
    }

    #[test]
    fn standard_normal_is_centered() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.05, "mean = {m}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| lognormal(&mut r, 0.0, 1.0) > 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weibull_rejects_bad_params() {
        let _ = weibull(&mut rng(), 0.0, 1.0);
    }
}
