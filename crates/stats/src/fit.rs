//! Least-squares fitting: linear regression, Zipf and stretched-exponential
//! rank-distribution models, and correlation.
//!
//! The paper fits the number of data requests per ranked neighbor with both
//! a Zipf model (straight line in log-log scale) and a stretched-exponential
//! model (straight line in "SE scale": `y^c` against `log10 rank`), and shows
//! the SE model wins decisively. These routines implement exactly those fits.

use serde::{Deserialize, Serialize};

/// Ordinary least-squares line `y = slope * x + intercept` with its R².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in the fitted space.
    pub r2: f64,
}

/// Fits `y = slope * x + intercept` by least squares.
///
/// Returns `None` if fewer than two points are given or all `x` are equal.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "mismatched fit inputs");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` if fewer than two points or either sample is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "mismatched correlation inputs");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// A Zipf (power-law) fit `y_i ∝ i^(−alpha)` to a descending rank
/// distribution, evaluated in log-log space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfFit {
    /// The power-law exponent (positive for decaying distributions).
    pub alpha: f64,
    /// R² of the straight-line fit in log-log space.
    pub r2: f64,
}

/// Fits a Zipf model to a **descending** rank distribution of positive
/// values. Returns `None` with fewer than three positive values.
#[must_use]
pub fn zipf_fit(ranked: &[f64]) -> Option<ZipfFit> {
    let pts: Vec<(f64, f64)> = ranked
        .iter()
        .enumerate()
        .filter(|(_, &y)| y > 0.0)
        .map(|(i, &y)| (((i + 1) as f64).log10(), y.log10()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let fit = linear_fit(&xs, &ys)?;
    Some(ZipfFit {
        alpha: -fit.slope,
        r2: fit.r2,
    })
}

/// A stretched-exponential fit `y_i^c = −a·log10(i) + b` to a descending
/// rank distribution (the paper's Eq. 1; its CCDF is a Weibull).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StretchedExpFit {
    /// The stretch exponent `c` (0 < c ≤ 1 in media workloads).
    pub c: f64,
    /// Slope magnitude `a` (`a = x₀^c` in the paper's parametrization).
    pub a: f64,
    /// Intercept `b` (`b = y₁^c`).
    pub b: f64,
    /// R² of the straight-line fit in SE scale (`y^c` vs `log10 i`).
    pub r2: f64,
}

impl StretchedExpFit {
    /// The model's predicted value at 1-based rank `i`, clamped at zero.
    #[must_use]
    pub fn predict(&self, rank: usize) -> f64 {
        let yc = self.b - self.a * (rank as f64).log10();
        if yc <= 0.0 {
            0.0
        } else {
            yc.powf(1.0 / self.c)
        }
    }
}

/// Fits the stretched-exponential rank model by grid search over `c`
/// (0.05..=1.00 in 0.05 steps, the granularity the paper reports) with least
/// squares for `a`, `b` at each candidate; keeps the `c` with the best R².
///
/// Returns `None` with fewer than three positive values.
#[must_use]
pub fn stretched_exp_fit(ranked: &[f64]) -> Option<StretchedExpFit> {
    let positive: Vec<f64> = ranked.iter().copied().filter(|&y| y > 0.0).collect();
    if positive.len() < 3 {
        return None;
    }
    let xs: Vec<f64> = (1..=positive.len()).map(|i| (i as f64).log10()).collect();
    let mut best: Option<StretchedExpFit> = None;
    for step in 1..=20 {
        let c = step as f64 * 0.05;
        let ys: Vec<f64> = positive.iter().map(|y| y.powf(c)).collect();
        if let Some(fit) = linear_fit(&xs, &ys) {
            let candidate = StretchedExpFit {
                c,
                a: -fit.slope,
                b: fit.intercept,
                r2: fit.r2,
            };
            if best.is_none_or(|b| candidate.r2 > b.r2) {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Correlation between the logarithm of a rank distribution's values and the
/// logarithm of a covariate (the paper's Figures 15–18: log #requests vs
/// log RTT). Pairs with non-positive components are skipped.
#[must_use]
pub fn log_log_correlation(values: &[f64], covariate: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = values
        .iter()
        .zip(covariate)
        .filter(|(&v, &c)| v > 0.0 && c > 0.0)
        .map(|(&v, &c)| (v.ln(), c.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pearson_detects_perfect_and_anti_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
    }

    #[test]
    fn zipf_fit_recovers_exponent_on_pure_power_law() {
        let ranked: Vec<f64> = (1..=500).map(|i| 1e6 * (i as f64).powf(-1.3)).collect();
        let fit = zipf_fit(&ranked).unwrap();
        assert!((fit.alpha - 1.3).abs() < 1e-9, "alpha = {}", fit.alpha);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn se_fit_recovers_parameters_on_pure_se_data() {
        // Generate y_i = (b - a log10 i)^(1/c) with known parameters.
        let (c, a, b) = (0.35, 5.0, 30.0);
        let n = 200;
        let ranked: Vec<f64> = (1..=n)
            .map(|i| {
                let yc = b - a * (i as f64).log10();
                yc.max(1e-9).powf(1.0 / c)
            })
            .collect();
        let fit = stretched_exp_fit(&ranked).unwrap();
        assert!((fit.c - c).abs() < 0.051, "c = {}", fit.c);
        assert!(fit.r2 > 0.99, "r2 = {}", fit.r2);
        // Prediction round-trips roughly.
        assert!((fit.predict(1) - ranked[0]).abs() / ranked[0] < 0.2);
    }

    #[test]
    fn se_beats_zipf_on_se_data_and_vice_versa() {
        let se_data: Vec<f64> = (1..=300)
            .map(|i| {
                let yc: f64 = 40.0 - 7.0 * (i as f64).log10();
                yc.max(1e-9).powf(1.0 / 0.4)
            })
            .collect();
        let se = stretched_exp_fit(&se_data).unwrap();
        let zipf = zipf_fit(&se_data).unwrap();
        assert!(se.r2 > zipf.r2, "se {} vs zipf {}", se.r2, zipf.r2);

        let zipf_data: Vec<f64> = (1..=300).map(|i| 1e5 * (i as f64).powf(-1.0)).collect();
        let z2 = zipf_fit(&zipf_data).unwrap();
        assert!(z2.r2 > 0.9999);
    }

    #[test]
    fn log_log_correlation_is_negative_for_inverse_relation() {
        let requests: Vec<f64> = (1..=100).map(|i| 1000.0 / i as f64).collect();
        let rtt: Vec<f64> = (1..=100).map(|i| 0.01 * i as f64).collect();
        let r = log_log_correlation(&requests, &rtt).unwrap();
        assert!(r < -0.99, "r = {r}");
    }

    #[test]
    fn log_log_correlation_skips_nonpositive_pairs() {
        let values = [0.0, 10.0, 5.0, 2.0];
        let cov = [1.0, 2.0, -1.0, 8.0];
        // Only (10,2) and (2,8) survive.
        assert!(log_log_correlation(&values, &cov).is_some());
    }

    #[test]
    fn rank_fits_reject_empty_input() {
        assert_eq!(zipf_fit(&[]), None);
        assert_eq!(stretched_exp_fit(&[]), None);
        assert_eq!(linear_fit(&[], &[]), None);
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(log_log_correlation(&[], &[]), None);
    }

    #[test]
    fn rank_fits_reject_single_rank() {
        // One positive rank is far below the three-point minimum, and it
        // must not matter whether the rest of the distribution is zero
        // padding or absent entirely.
        assert_eq!(zipf_fit(&[42.0]), None);
        assert_eq!(stretched_exp_fit(&[42.0]), None);
        assert_eq!(zipf_fit(&[42.0, 0.0, 0.0, 0.0]), None);
        assert_eq!(stretched_exp_fit(&[42.0, 0.0, 0.0, 0.0]), None);
        // Two positive ranks are still one short.
        assert_eq!(zipf_fit(&[42.0, 17.0]), None);
        assert_eq!(stretched_exp_fit(&[42.0, 17.0]), None);
    }

    #[test]
    fn rank_fits_handle_all_equal_counts() {
        // A flat distribution (every neighbor served the same number of
        // requests) is a horizontal line in both fitted spaces: slope 0,
        // and ss_tot == 0 makes R² degenerate to the 1.0 convention.
        let flat = [7.0; 25];
        let zipf = zipf_fit(&flat).expect("flat data still has >= 3 positive ranks");
        assert!(zipf.alpha.abs() < 1e-12, "alpha = {}", zipf.alpha);
        assert!((zipf.r2 - 1.0).abs() < 1e-12);

        let se = stretched_exp_fit(&flat).expect("flat data fits trivially");
        assert!(se.a.abs() < 1e-9, "a = {}", se.a);
        assert!((se.r2 - 1.0).abs() < 1e-9);
        // The model reproduces the constant at any rank.
        assert!((se.predict(1) - 7.0).abs() < 1e-6);
        assert!((se.predict(25) - 7.0).abs() < 1e-6);

        // Constant values leave no signal to correlate with: either the
        // variance check trips (None) or roundoff in the mean leaves a
        // correlation indistinguishable from zero — never a spurious ±1.
        let covariate: Vec<f64> = (1..=25).map(f64::from).collect();
        let r = log_log_correlation(&flat, &covariate);
        assert!(r.is_none_or(|r| r.abs() < 1e-9), "r = {r:?}");
    }

    #[test]
    fn zero_and_negative_values_are_dropped_before_fitting() {
        // Ranks with zero counts are excluded from log-log space (log10(0)
        // is undefined); the fit must use only the positive head.
        let mut ranked: Vec<f64> = (1..=50).map(|i| 1e4 * (i as f64).powf(-1.1)).collect();
        ranked.resize(100, 0.0);
        let fit = zipf_fit(&ranked).expect("positive head is fittable");
        assert!((fit.alpha - 1.1).abs() < 1e-9, "alpha = {}", fit.alpha);
    }
}
