//! # plsim-stats — statistics for the traffic-locality analysis
//!
//! The numerical toolkit behind the paper's figures:
//!
//! * [`zipf_fit`] and [`stretched_exp_fit`] — the two rank-distribution
//!   models compared in Figures 11–14 (the paper's Eq. 1: `y_i^c = −a·log i
//!   + b`, whose CCDF is a Weibull);
//! * [`pearson`] / [`log_log_correlation`] — the request-count vs RTT
//!   correlations of Figures 15–18;
//! * [`top_share`], [`ecdf`] — contribution CDFs and the "top 10% of peers
//!   provide ~70% of traffic" headline numbers;
//! * [`weibull`] etc. — variates for synthetic workload generation.
//!
//! # Examples
//!
//! ```
//! use plsim_stats::{stretched_exp_fit, top_share, zipf_fit};
//!
//! // A stretched-exponential rank distribution...
//! let ranked: Vec<f64> = (1..=100u32)
//!     .map(|i| {
//!         let yc: f64 = 20.0 - 4.0 * f64::from(i).log10();
//!         yc.max(1e-9).powf(1.0 / 0.4)
//!     })
//!     .collect();
//! // ...is fitted better by the SE model than by Zipf.
//! let se = stretched_exp_fit(&ranked).unwrap();
//! let zipf = zipf_fit(&ranked).unwrap();
//! assert!(se.r2 > zipf.r2);
//! assert!(top_share(&ranked, 0.1).unwrap() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod distributions;
mod fit;
mod summary;

pub use distributions::{exponential, lognormal, standard_normal, weibull};
pub use fit::{
    linear_fit, log_log_correlation, pearson, stretched_exp_fit, zipf_fit, LinearFit,
    StretchedExpFit, ZipfFit,
};
pub use summary::{ecdf, mean, quantile, rank_descending, std_dev, top_share};
