//! Basic descriptive statistics and empirical distributions.

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
#[must_use]
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation; `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or NaN.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Empirical CDF: returns `(x, F(x))` points at each sorted sample.
#[must_use]
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Sorts contributions descending and returns them: a rank distribution
/// ready for [`crate::zipf_fit`] / [`crate::stretched_exp_fit`].
#[must_use]
pub fn rank_descending(values: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("non-NaN values"));
    sorted
}

/// Fraction of the total mass contributed by the top `frac` of contributors
/// (e.g. `top_share(&bytes, 0.1)` = the paper's "top 10% of connected peers
/// uploaded X% of the traffic"). Returns `None` when empty or the total is
/// not positive.
///
/// # Panics
///
/// Panics if `frac` is outside `(0, 1]`.
#[must_use]
pub fn top_share(values: &[f64], frac: f64) -> Option<f64> {
    assert!(frac > 0.0 && frac <= 1.0, "fraction out of range: {frac}");
    if values.is_empty() {
        return None;
    }
    let ranked = rank_descending(values);
    let total: f64 = ranked.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let k = ((ranked.len() as f64 * frac).ceil() as usize).clamp(1, ranked.len());
    Some(ranked[..k].iter().sum::<f64>() / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_data() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert!((std_dev(&v).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let v = [3.0, 1.0, 2.0, 2.0];
        let cdf = ecdf(&v);
        assert_eq!(cdf.len(), 4);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn top_share_of_uniform_data_matches_fraction() {
        let v = vec![1.0; 100];
        let s = top_share(&v, 0.1).unwrap();
        assert!((s - 0.1).abs() < 1e-12);
    }

    #[test]
    fn top_share_of_skewed_data_is_large() {
        let mut v = vec![1.0; 90];
        v.extend(vec![100.0; 10]);
        let s = top_share(&v, 0.1).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn top_share_empty_and_zero_total() {
        assert_eq!(top_share(&[], 0.1), None);
        assert_eq!(top_share(&[0.0, 0.0], 0.5), None);
    }

    #[test]
    fn rank_descending_sorts() {
        assert_eq!(rank_descending(&[1.0, 3.0, 2.0]), vec![3.0, 2.0, 1.0]);
    }
}
