//! Property tests for the fitting and summary routines.

use plsim_stats::*;
use proptest::prelude::*;

proptest! {
    /// ECDF is monotone, bounded by (0, 1], and has one point per sample.
    #[test]
    fn ecdf_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = ecdf(&values);
        prop_assert_eq!(cdf.len(), values.len());
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        for &(_, f) in &cdf {
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// top_share is monotone in the fraction and reaches 1.0 at frac = 1.
    #[test]
    fn top_share_monotone(values in proptest::collection::vec(0.1f64..1e4, 2..200)) {
        let s10 = top_share(&values, 0.1).unwrap();
        let s50 = top_share(&values, 0.5).unwrap();
        let s100 = top_share(&values, 1.0).unwrap();
        prop_assert!(s10 <= s50 + 1e-12);
        prop_assert!(s50 <= s100 + 1e-12);
        prop_assert!((s100 - 1.0).abs() < 1e-9);
        // The top 10% can never contribute less than 10% (they are the largest).
        prop_assert!(s10 >= 0.1 - 1e-9);
    }

    /// Pearson is symmetric, bounded, and invariant under affine maps with
    /// positive scale.
    #[test]
    fn pearson_properties(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r_sym = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r_sym).abs() < 1e-9);
            let xs2: Vec<f64> = xs.iter().map(|x| scale * x + shift).collect();
            if let Some(r_affine) = pearson(&xs2, &ys) {
                prop_assert!((r - r_affine).abs() < 1e-6);
            }
        }
    }

    /// The SE fit recovers c within one grid step on synthetic SE data of
    /// random parameters.
    #[test]
    fn se_fit_recovers_c(c_step in 4usize..16, a in 1.0f64..10.0, n in 50usize..300) {
        let c = c_step as f64 * 0.05;
        // Ensure y_n >= 1 by the paper's normalization b = 1 + a log n.
        let b = 1.0 + a * (n as f64).log10();
        let ranked: Vec<f64> = (1..=n)
            .map(|i| (b - a * (i as f64).log10()).powf(1.0 / c))
            .collect();
        let fit = stretched_exp_fit(&ranked).unwrap();
        prop_assert!((fit.c - c).abs() < 0.051, "true c={c}, fitted c={}", fit.c);
        prop_assert!(fit.r2 > 0.98, "r2 = {}", fit.r2);
    }

    /// Zipf fit recovers alpha on synthetic power-law data of random
    /// exponent.
    #[test]
    fn zipf_fit_recovers_alpha(alpha in 0.3f64..2.5, n in 20usize..300) {
        let ranked: Vec<f64> = (1..=n).map(|i| 1e7 * (i as f64).powf(-alpha)).collect();
        let fit = zipf_fit(&ranked).unwrap();
        prop_assert!((fit.alpha - alpha).abs() < 1e-6);
    }

    /// Linear fit residual-optimality sanity: the analytic least-squares
    /// solution has no worse SSE than small perturbations of it.
    #[test]
    fn linear_fit_is_locally_optimal(
        pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..50),
        ds in -0.1f64..0.1,
        di in -0.1f64..0.1,
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if let Some(fit) = linear_fit(&xs, &ys) {
            let sse = |s: f64, i: f64| -> f64 {
                xs.iter().zip(&ys).map(|(x, y)| (y - (s * x + i)).powi(2)).sum()
            };
            let best = sse(fit.slope, fit.intercept);
            prop_assert!(best <= sse(fit.slope + ds, fit.intercept + di) + 1e-6);
        }
    }

    /// Quantile is monotone in q and bracketed by min/max.
    #[test]
    fn quantile_monotone(values in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
        let q25 = quantile(&values, 0.25).unwrap();
        let q50 = quantile(&values, 0.5).unwrap();
        let q75 = quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q25 >= min - 1e-9 && q75 <= max + 1e-9);
    }
}
