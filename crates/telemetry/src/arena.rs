//! Refcounted block arena: the free-list sibling of [`PagedVec`].
//!
//! [`PagedVec`] solves append-only growth; [`BlockArena`] solves the other
//! recurring allocation pattern in the simulator — short-lived, bounded
//! slices that are created and dropped millions of times (peer lists
//! riding on protocol messages). Each *block* is a reusable `Vec<T>`: a
//! handle layer (e.g. `plsim_proto::SharedPeerList`) interns a slice into
//! a block, bumps the block's refcount on clone, and releases it on drop,
//! at which point the block's storage goes back on the free list with its
//! capacity intact. Once the arena has warmed to the workload's peak
//! concurrency, interning and releasing allocate nothing.
//!
//! The arena is deliberately single-threaded plumbing (no atomics); wrap
//! it in `Rc<RefCell<_>>` for shared handles, as the capture tap does with
//! its state.
//!
//! [`PagedVec`]: crate::PagedVec

/// One reusable slice slot plus its reference count.
#[derive(Debug, Clone)]
struct Block<T> {
    items: Vec<T>,
    refs: u32,
}

/// A free-list arena of refcounted, reusable blocks (see module docs).
#[derive(Debug, Clone)]
pub struct BlockArena<T> {
    blocks: Vec<Block<T>>,
    free: Vec<u32>,
    /// High-water mark of simultaneously live blocks.
    peak_live: usize,
}

impl<T> Default for BlockArena<T> {
    fn default() -> Self {
        BlockArena {
            blocks: Vec::new(),
            free: Vec::new(),
            peak_live: 0,
        }
    }
}

impl<T> BlockArena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        BlockArena::default()
    }

    /// Interns the items produced by `fill` into a block and returns the
    /// block's index with an initial reference count of one. `fill`
    /// appends into the block's reused storage; steady state this
    /// allocates nothing (the block `Vec` keeps its capacity across
    /// reuse).
    pub fn intern_with(&mut self, fill: impl FnOnce(&mut Vec<T>)) -> u32 {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.blocks.push(Block {
                    items: Vec::new(),
                    refs: 0,
                });
                (self.blocks.len() - 1) as u32
            }
        };
        let block = &mut self.blocks[index as usize];
        block.items.clear();
        block.refs = 1;
        fill(&mut block.items);
        self.peak_live = self.peak_live.max(self.blocks.len() - self.free.len());
        index
    }

    /// The interned slice of `block`.
    #[must_use]
    pub fn get(&self, block: u32) -> &[T] {
        &self.blocks[block as usize].items
    }

    /// Adds a reference to `block` (handle clone).
    pub fn retain(&mut self, block: u32) {
        self.blocks[block as usize].refs += 1;
    }

    /// Drops a reference to `block` (handle drop); when the count reaches
    /// zero the block returns to the free list, storage intact.
    pub fn release(&mut self, block: u32) {
        let b = &mut self.blocks[block as usize];
        debug_assert!(b.refs > 0, "release of a dead block");
        b.refs -= 1;
        if b.refs == 0 {
            self.free.push(block);
        }
    }

    /// Total blocks ever created (live + free).
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks currently on the free list.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently holding a live interned slice.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.blocks.len() - self.free.len()
    }

    /// High-water mark of simultaneously live blocks — the arena's warmed
    /// working-set size.
    #[must_use]
    pub fn peak_live_blocks(&self) -> usize {
        self.peak_live
    }

    /// Bytes of heap held by the block storage and the free list.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.items.capacity() * std::mem::size_of::<T>())
            .sum::<usize>()
            + self.blocks.capacity() * std::mem::size_of::<Block<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_roundtrip() {
        let mut a: BlockArena<u32> = BlockArena::new();
        let b0 = a.intern_with(|v| v.extend([1, 2, 3]));
        let b1 = a.intern_with(|v| v.extend([9]));
        assert_eq!(a.get(b0), &[1, 2, 3]);
        assert_eq!(a.get(b1), &[9]);
        assert_eq!(a.blocks(), 2);
        assert_eq!(a.live_blocks(), 2);
    }

    #[test]
    fn release_recycles_and_reuse_keeps_capacity() {
        let mut a: BlockArena<u32> = BlockArena::new();
        let b0 = a.intern_with(|v| v.extend(0..50));
        a.release(b0);
        assert_eq!(a.free_blocks(), 1);
        // The next intern reuses the freed block, not a new one.
        let b1 = a.intern_with(|v| v.extend([7]));
        assert_eq!(b1, b0);
        assert_eq!(a.blocks(), 1);
        assert_eq!(a.get(b1), &[7]);
    }

    #[test]
    fn retain_delays_recycling() {
        let mut a: BlockArena<u32> = BlockArena::new();
        let b = a.intern_with(|v| v.push(5));
        a.retain(b);
        a.release(b);
        assert_eq!(a.free_blocks(), 0, "still one reference");
        a.release(b);
        assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut a: BlockArena<u8> = BlockArena::new();
        let b0 = a.intern_with(|v| v.push(0));
        let b1 = a.intern_with(|v| v.push(1));
        assert_eq!(a.peak_live_blocks(), 2);
        a.release(b0);
        a.release(b1);
        let _ = a.intern_with(|v| v.push(2));
        assert_eq!(a.peak_live_blocks(), 2, "peak is a high-water mark");
        assert!(a.heap_bytes() > 0);
    }
}
