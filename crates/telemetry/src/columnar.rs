//! Append-only paged vectors: the struct-of-arrays building block.
//!
//! A columnar trace store keeps one `PagedVec` per column (timestamps,
//! node ids, byte counts, …). Pages have a fixed power-of-two capacity, so
//!
//! * an append never moves existing data — no `Vec`-style double-and-copy,
//!   hence no transient 2× peak-memory spike while a multi-gigarecord
//!   trace grows, and
//! * indexing is a shift and a mask, cheap enough for streaming cursors.

/// Rows per page. Power of two so index math is shift/mask.
pub const PAGE_ROWS: usize = 8192;

const SHIFT: u32 = PAGE_ROWS.trailing_zeros();
const MASK: usize = PAGE_ROWS - 1;

/// An append-only vector laid out as fixed-size pages.
///
/// Unlike `Vec<T>`, pushing never reallocates existing elements; full
/// pages are frozen and a fresh page is allocated. Equality is
/// element-wise.
#[derive(Clone)]
pub struct PagedVec<T> {
    pages: Vec<Vec<T>>,
    len: usize,
}

impl<T> Default for PagedVec<T> {
    fn default() -> Self {
        PagedVec {
            pages: Vec::new(),
            len: 0,
        }
    }
}

impl<T> PagedVec<T> {
    /// An empty paged vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no element has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len >> SHIFT == self.pages.len() {
            self.pages.push(Vec::with_capacity(PAGE_ROWS));
        }
        self.pages[self.len >> SHIFT].push(value);
        self.len += 1;
    }

    /// The element at `index`, if in bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index < self.len {
            Some(&self.pages[index >> SHIFT][index & MASK])
        } else {
            None
        }
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.pages.iter().flat_map(|p| p.iter())
    }

    /// The backing slice of page `page` (empty past the end). Cursors use
    /// this to decode a page at a time through plain slices instead of
    /// per-index page lookups.
    #[must_use]
    pub fn page(&self, page: usize) -> &[T] {
        self.pages.get(page).map_or(&[], Vec::as_slice)
    }

    /// Evicts page `page`, returning its owned rows and leaving an empty
    /// placeholder behind (so `heap_bytes` drops by the page's capacity
    /// and `page()` returns an empty slice for it).
    ///
    /// The element count is unchanged: callers own the spill bookkeeping
    /// and must not index into an evicted page (`get` would panic).
    /// Returns `None` past the end.
    pub fn evict_page(&mut self, page: usize) -> Option<Vec<T>> {
        let slot = self.pages.get_mut(page)?;
        Some(std::mem::take(slot))
    }

    /// Bytes of heap backing this column (page payloads only; the page
    /// index is negligible).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.pages
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<T>())
            .sum()
    }
}

impl<T: PartialEq> PartialEq for PagedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T> std::fmt::Debug for PagedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedVec")
            .field("len", &self.len)
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl<T> FromIterator<T> for PagedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = PagedVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip_across_pages() {
        let n = PAGE_ROWS * 2 + 17;
        let v: PagedVec<usize> = (0..n).collect();
        assert_eq!(v.len(), n);
        assert!(!v.is_empty());
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(PAGE_ROWS), Some(&PAGE_ROWS));
        assert_eq!(v.get(n - 1), Some(&(n - 1)));
        assert_eq!(v.get(n), None);
        assert!(v.iter().copied().eq(0..n));
    }

    #[test]
    fn equality_is_element_wise() {
        let a: PagedVec<u32> = (0..10).collect();
        let b: PagedVec<u32> = (0..10).collect();
        let c: PagedVec<u32> = (0..11).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pages_never_exceed_capacity() {
        let v: PagedVec<u8> = std::iter::repeat_n(7u8, PAGE_ROWS + 1).collect();
        assert_eq!(v.pages.len(), 2);
        assert_eq!(v.pages[0].len(), PAGE_ROWS);
        assert_eq!(v.pages[0].capacity(), PAGE_ROWS, "full page never regrows");
        assert!(v.heap_bytes() > PAGE_ROWS);
    }

    #[test]
    fn evicting_a_page_releases_its_heap() {
        let mut v: PagedVec<u64> = (0..(PAGE_ROWS * 2 + 5) as u64).collect();
        let full = v.heap_bytes();
        let page = v.evict_page(0).expect("page 0 exists");
        assert_eq!(page.len(), PAGE_ROWS);
        assert!(page.iter().copied().eq(0..PAGE_ROWS as u64));
        assert_eq!(
            v.heap_bytes(),
            full - PAGE_ROWS * std::mem::size_of::<u64>()
        );
        assert!(v.page(0).is_empty());
        assert_eq!(v.len(), PAGE_ROWS * 2 + 5, "len is spill-independent");
        // Appends continue past the eviction untouched.
        v.push(999);
        assert_eq!(v.get(PAGE_ROWS * 2 + 5), Some(&999));
        assert_eq!(v.evict_page(99), None);
    }

    #[test]
    fn empty_debug_and_default() {
        let v: PagedVec<u64> = PagedVec::default();
        assert!(v.is_empty());
        assert_eq!(v.heap_bytes(), 0);
        assert!(format!("{v:?}").contains("len"));
    }
}
