//! # plsim-telemetry — the unified telemetry core
//!
//! Every layer of the simulator observes itself: the DES kernel counts
//! events, the underlay tracks interconnect backlogs, nodes account
//! playback, and the capture tap stores packet traces. Before this crate
//! each of those invented its own accounting; here they share two
//! primitives:
//!
//! * a **metrics registry** ([`MetricsRegistry`]) of named counters,
//!   gauges and fixed-bucket histograms. Handles are interned once by name
//!   and are allocation-free on the hot path (a handle is an `Rc<Cell>`
//!   bump — no map lookup, no `RefCell` borrow per increment). One
//!   [`MetricsSnapshot`] per run is the single export path feeding
//!   `core::export`, `ScenarioRun` and `BENCH_engine.json`.
//! * **columnar storage building blocks** ([`PagedVec`]) for
//!   struct-of-arrays stores such as `plsim_capture::TraceStore`:
//!   append-only fixed-size pages, so appends never reallocate-and-copy
//!   (no transient 2× peak during growth) and per-column layout drops the
//!   row-struct padding. Sealed pages can be evicted to a [`SpillFile`]
//!   under a byte budget (`PLSIM_CAPTURE_BUDGET`), which is what lets a
//!   capture-on run hold a bounded resident set however long the trace.
//! * **online sketches** ([`P2Quantile`], [`StreamingMoments`]) so
//!   single-pass analysis folds can summarize distributions without
//!   retaining samples.
//!
//! The crate deliberately depends on nothing but `serde`, so any layer —
//! including the DES kernel at the very bottom — can use it.
//!
//! # Examples
//!
//! ```
//! use plsim_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let events = registry.counter("des.events_processed");
//! let depth = registry.gauge("des.queue_depth");
//! events.inc();
//! depth.set(3);
//! depth.set(1);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("des.events_processed"), Some(1));
//! assert_eq!(snap.gauge("des.queue_depth").unwrap().peak, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arena;
mod columnar;
mod metrics;
mod sketch;
mod spill;

pub use arena::BlockArena;
pub use columnar::{PagedVec, PAGE_ROWS};
pub use metrics::{
    Counter, Gauge, GaugeValue, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use sketch::{P2Quantile, StreamingMoments};
pub use spill::{
    capture_budget_from_env, parse_byte_budget, SpillFile, SpillFrame, CAPTURE_BUDGET_ENV,
};
