//! Cross-layer metrics registry: named counters, gauges and fixed-bucket
//! histograms with allocation-free hot-path handles.
//!
//! A handle ([`Counter`], [`Gauge`], [`Histogram`]) is interned once by
//! name and then bumped through a shared `Cell` — no hash lookup, no
//! `RefCell` borrow, no allocation per increment, which is what lets the
//! DES kernel route its per-event counters through the registry without
//! losing throughput. Registries are single-threaded (`Rc`), like the
//! simulations they observe; the cross-thread artifact is the plain-data
//! [`MetricsSnapshot`], which is `Send`.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    /// A counter not attached to any registry (for tests and default
    /// wiring before [`MetricsRegistry`] handles are attached).
    #[must_use]
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.set(self.cell.get() + 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.set(self.cell.get() + n);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.get()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge handle: a current value plus its high-water mark.
#[derive(Clone, Default)]
pub struct Gauge {
    current: Rc<Cell<u64>>,
    peak: Rc<Cell<u64>>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    #[must_use]
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the current value, updating the peak.
    #[inline]
    pub fn set(&self, v: u64) {
        self.current.set(v);
        if v > self.peak.get() {
            self.peak.set(v);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.current.get()
    }

    /// High-water mark over the gauge's lifetime.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.get()
    }

    /// Overwrites the current value *without* touching the peak — the
    /// end-of-run hook for instruments whose final reading is a settled
    /// state (e.g. a queue drained to the horizon) rather than a new
    /// high-water observation.
    #[inline]
    pub fn finalize(&self, v: u64) {
        self.current.set(v);
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({}, peak {})", self.get(), self.peak())
    }
}

struct HistogramInner {
    /// Upper bounds of the buckets; values above the last bound land in
    /// the overflow bucket, so `counts.len() == bounds.len() + 1`.
    bounds: Vec<f64>,
    counts: Vec<Cell<u64>>,
    count: Cell<u64>,
    /// Sum of observations in fixed-point nanounits. Integer accumulation
    /// is associative and commutative, so histogram sums merge exactly
    /// across per-shard registries regardless of observation order —
    /// float accumulation would drift by rounding order.
    sum_nanos: Cell<i128>,
}

/// Fixed-point scale for histogram sums: one observation unit = 1e9 nanos.
const HIST_NANOS: f64 = 1e9;

/// A fixed-bucket histogram handle. Buckets are set at interning time and
/// never reallocate, so observations are hot-path safe.
#[derive(Clone)]
pub struct Histogram {
    inner: Rc<HistogramInner>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    #[must_use]
    pub fn detached(bounds: &[f64]) -> Histogram {
        Histogram {
            inner: Rc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: vec![Cell::new(0); bounds.len() + 1],
                count: Cell::new(0),
                sum_nanos: Cell::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let h = &*self.inner;
        let idx = h
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(h.bounds.len());
        h.counts[idx].set(h.counts[idx].get() + 1);
        h.count.set(h.count.get() + 1);
        h.sum_nanos
            .set(h.sum_nanos.get() + (v * HIST_NANOS).round() as i128);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.get()
    }

    fn snap(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self.inner.counts.iter().map(Cell::get).collect(),
            count: self.inner.count.get(),
            sum_nanos: self.inner.sum_nanos.get(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({} obs)", self.count())
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The cross-layer metrics registry. Cheap to clone (a shared handle);
/// every layer of one simulation interns its instruments into the same
/// registry, and one [`snapshot`](MetricsRegistry::snapshot) at the end
/// of the run is the single export path.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Interns (or retrieves) the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Interns (or retrieves) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Interns (or retrieves) the histogram `name`. The bucket bounds of
    /// the first interning win; later callers share the existing buckets.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::detached(bounds);
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Reads every instrument into a plain-data, `Send` snapshot, sorted
    /// by name for deterministic output.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        let mut out = MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| {
                    (
                        n.clone(),
                        GaugeValue {
                            current: g.get(),
                            peak: g.peak(),
                        },
                    )
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snap()))
                .collect(),
        };
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A gauge's exported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeValue {
    /// Value at snapshot time.
    pub current: u64,
    /// High-water mark over the run.
    pub peak: u64,
}

/// A histogram's exported value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final bucket is overflow).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observed values in fixed-point nanounits (merge by
    /// integer addition; read in observation units via
    /// [`HistogramSnapshot::sum`]).
    pub sum_nanos: i128,
}

impl HistogramSnapshot {
    /// Sum of observed values, in observation units.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum_nanos as f64 / HIST_NANOS
    }

    /// Mean observed value, if any observation was made.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum() / self.count as f64)
        }
    }
}

/// End-of-run values of every instrument, sorted by name. Plain data:
/// `Send`, comparable, mergeable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, GaugeValue)>,
    /// Histogram values by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<GaugeValue> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Adds `delta` to counter `name`, creating it (sorted into place) if
    /// absent — the hook by which post-hoc passes such as the invariant
    /// checker fold their tallies into an existing run snapshot.
    pub fn bump_counter(&mut self, name: &str, delta: u64) {
        match self
            .counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.counters[i].1 += delta,
            Err(i) => self.counters.insert(i, (name.to_string(), delta)),
        }
    }

    /// Sets gauge `name` to an explicit value, creating it (sorted into
    /// place) if absent — the override hook for instruments whose merged
    /// value is computed outside the registry (e.g. the sharded kernel's
    /// replayed global queue depth).
    pub fn set_gauge(&mut self, name: &str, value: GaugeValue) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// Merges per-shard snapshots into one global snapshot.
    ///
    /// Counters and histogram tallies are partitioned across shards (every
    /// event is counted by exactly one shard), so they merge by exact
    /// integer addition; histogram sums add in fixed-point nanounits, so
    /// the result is independent of shard count and observation order.
    /// Gauges merge as `current = Σ current`, `peak = max peak` — correct
    /// for instruments whose observations are disjoint per shard (each
    /// interconnect queue is owned by exactly one shard); instruments that
    /// need a cross-shard reconstruction (the kernel queue-depth gauge)
    /// are overridden afterwards via [`MetricsSnapshot::set_gauge`].
    #[must_use]
    pub fn merge(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for part in parts {
            for (name, v) in &part.counters {
                out.bump_counter(name, *v);
            }
            for (name, g) in &part.gauges {
                match out.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => {
                        let m = &mut out.gauges[i].1;
                        m.current += g.current;
                        m.peak = m.peak.max(g.peak);
                    }
                    Err(i) => out.gauges.insert(i, (name.clone(), *g)),
                }
            }
            for (name, h) in &part.histograms {
                match out
                    .histograms
                    .binary_search_by(|(n, _)| n.as_str().cmp(name))
                {
                    Ok(i) => {
                        let m = &mut out.histograms[i].1;
                        debug_assert_eq!(m.bounds, h.bounds, "merging mismatched buckets");
                        for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                        m.count += h.count;
                        m.sum_nanos += h.sum_nanos;
                    }
                    Err(i) => out.histograms.insert(i, (name.clone(), h.clone())),
                }
            }
        }
        out
    }

    /// Renders the snapshot as a self-contained JSON object (the
    /// workspace's vendored serde has no JSON backend, so this is written
    /// out by hand like the other exporters).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{n}\": {v}"));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{n}\": {{\"current\": {}, \"peak\": {}}}",
                g.current, g.peak
            ));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let bounds = h
                .bounds
                .iter()
                .map(|b| format!("{b}"))
                .collect::<Vec<_>>()
                .join(", ");
            let counts = h
                .counts
                .iter()
                .map(|c| format!("{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "\n    \"{n}\": {{\"bounds\": [{bounds}], \"counts\": [{counts}], \"count\": {}, \"sum\": {}}}",
                h.count,
                h.sum()
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x"), Some(3));
        assert_eq!(r.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::detached();
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 5);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::detached(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let s = h.snap();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert!((s.sum() - 11.0).abs() < 1e-12);
        assert!((s.mean().unwrap() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_finalize_skips_peak() {
        let g = Gauge::detached();
        g.set(5);
        g.finalize(9);
        assert_eq!(g.get(), 9);
        assert_eq!(g.peak(), 5, "finalize must not raise the peak");
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_peaks() {
        let a = MetricsRegistry::new();
        a.counter("c").add(3);
        a.gauge("g").set(4);
        a.histogram("h", &[1.0]).observe(0.25);
        let b = MetricsRegistry::new();
        b.counter("c").add(2);
        b.counter("only_b").inc();
        b.gauge("g").set(7);
        b.histogram("h", &[1.0]).observe(2.5);
        let merged = MetricsSnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.counter("c"), Some(5));
        assert_eq!(merged.counter("only_b"), Some(1));
        let g = merged.gauge("g").unwrap();
        assert_eq!(g.current, 11);
        assert_eq!(g.peak, 7);
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.count, 2);
        assert!((h.sum() - 2.75).abs() < 1e-12);
        // Single-part merge is the identity.
        assert_eq!(MetricsSnapshot::merge(&[a.snapshot()]), a.snapshot());
    }

    #[test]
    fn set_gauge_overrides_or_inserts() {
        let r = MetricsRegistry::new();
        r.gauge("g").set(3);
        let mut snap = r.snapshot();
        snap.set_gauge(
            "g",
            GaugeValue {
                current: 1,
                peak: 9,
            },
        );
        snap.set_gauge(
            "new",
            GaugeValue {
                current: 2,
                peak: 2,
            },
        );
        assert_eq!(
            snap.gauge("g"),
            Some(GaugeValue {
                current: 1,
                peak: 9
            })
        );
        assert_eq!(
            snap.gauge("new"),
            Some(GaugeValue {
                current: 2,
                peak: 2
            })
        );
        assert!(snap.gauges.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn histogram_interning_keeps_first_bounds() {
        let r = MetricsRegistry::new();
        let a = r.histogram("h", &[1.0]);
        let b = r.histogram("h", &[5.0, 6.0]);
        a.observe(0.5);
        b.observe(0.6);
        assert_eq!(a.count(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("h").unwrap().bounds, vec![1.0]);
    }

    #[test]
    fn snapshot_is_sorted_and_mergeable() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let mut snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        snap.bump_counter("a", 4);
        snap.bump_counter("ab", 7);
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.counter("ab"), Some(7));
        assert!(snap.counters.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn json_contains_every_section() {
        let r = MetricsRegistry::new();
        r.counter("c").add(7);
        r.gauge("g").set(3);
        r.histogram("h", &[1.0]).observe(0.5);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"c\": 7"));
        assert!(json.contains("\"current\": 3, \"peak\": 3"));
        assert!(json.contains("\"bounds\": [1]"));
        assert!(json.contains("\"counts\": [1, 0]"));
    }

    #[test]
    fn send_snapshot() {
        fn assert_send<T: Send>(_: &T) {}
        let snap = MetricsRegistry::new().snapshot();
        assert_send(&snap);
    }
}
