//! Online sketches for streaming analysis: a P² quantile estimator and
//! exact integer moment accumulators.
//!
//! Bounded-memory analysis cannot sort the full sample, so order
//! statistics come from the P² algorithm (Jain & Chlamtac 1985): five
//! markers track the running quantile in O(1) state per observation.
//! Moments stay *exact* — count/sum/sum-of-squares in wide integers — so
//! two runs that observe the same integer samples in the same order
//! produce bit-identical accumulators, which is what lets sketches ride
//! through the sharded-run equivalence assertions.

/// Exact streaming moments over integer samples.
///
/// Accumulates in `u128`, so overflow needs ~3×10²⁵ max-sized `u64`
/// samples — unreachable for any trace. Equality is bit-exact, making the
/// accumulator safe to carry through determinism assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamingMoments {
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl StreamingMoments {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> StreamingMoments {
        StreamingMoments::default()
    }

    /// Folds one sample in.
    pub fn observe(&mut self, x: u64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += u128::from(x);
        self.sum_sq += u128::from(x) * u128::from(x);
    }

    /// Merges another accumulator (disjoint sample sets).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(approx_u128(self.sum) / self.count as f64)
        }
    }

    /// Population variance (`None` when empty).
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        let n = self.count as f64;
        Some((approx_u128(self.sum_sq) / n - mean * mean).max(0.0))
    }

    /// Population standard deviation (`None` when empty).
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[allow(clippy::cast_precision_loss)]
fn approx_u128(x: u128) -> f64 {
    x as f64
}

/// P² single-quantile estimator: five markers, O(1) per observation.
///
/// Deterministic — the marker update is a pure function of the
/// observation sequence — so two runs feeding identical sequences hold
/// bit-identical state. Until five samples arrive the estimate is the
/// exact order statistic of the buffered samples.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (the estimated quantile is `q[2]` once warmed).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments per observation.
    dn: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(p: f64) -> P2Quantile {
        let p = p.clamp(0.0, 1.0);
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Warm-up: collect the first five samples sorted into `q`.
            let k = self.count as usize;
            self.q[k] = x;
            let mut i = k;
            while i > 0 && self.q[i - 1] > self.q[i] {
                self.q.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        self.count += 1;

        // Which cell the observation falls into; extremes stretch q[0]/q[4].
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut cell = 0;
            while cell < 3 && x >= self.q[cell + 1] {
                cell += 1;
            }
            cell
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate (`None` before the first observation). With fewer
    /// than five samples this is the exact order statistic.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                // Exact quantile of the sorted warm-up buffer.
                let n = c as usize;
                let rank = (self.p * (n - 1) as f64).round() as usize;
                Some(self.q[rank.min(n - 1)])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_naive_accumulation() {
        let samples: Vec<u64> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let mut m = StreamingMoments::new();
        for &s in &samples {
            m.observe(s);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert_eq!(m.count(), 1000);
        assert_eq!(m.min(), 0);
        assert_eq!(m.max(), 999);
        assert!((m.mean().unwrap() - mean).abs() < 1e-9);
        assert!((m.variance().unwrap() - var).abs() < 1e-6);
    }

    #[test]
    fn moments_merge_equals_single_stream() {
        let mut left = StreamingMoments::new();
        let mut right = StreamingMoments::new();
        let mut all = StreamingMoments::new();
        for i in 0..100u64 {
            let x = (i * 31) % 47;
            all.observe(x);
            if i < 60 {
                left.observe(x);
            } else {
                right.observe(x);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
        let mut empty = StreamingMoments::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn p2_tracks_the_median_of_a_uniform_stream() {
        let mut sketch = P2Quantile::new(0.5);
        // Deterministic pseudo-uniform stream over [0, 1).
        let mut state = 88172645463325252u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            sketch.observe((state % 1_000_000) as f64 / 1_000_000.0);
        }
        let est = sketch.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est} off");
    }

    #[test]
    fn p2_tracks_a_tail_quantile() {
        let mut sketch = P2Quantile::new(0.95);
        for i in 0..10_000 {
            // 0..9999 shuffled by a multiplicative permutation.
            sketch.observe(f64::from((i * 7919) % 10_000));
        }
        let est = sketch.estimate().unwrap();
        assert!((est - 9500.0).abs() < 150.0, "p95 estimate {est} off");
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut sketch = P2Quantile::new(0.5);
        assert_eq!(sketch.estimate(), None);
        sketch.observe(10.0);
        assert_eq!(sketch.estimate(), Some(10.0));
        sketch.observe(2.0);
        sketch.observe(30.0);
        assert_eq!(sketch.estimate(), Some(10.0));
        assert_eq!(sketch.count(), 3);
        assert!((sketch.quantile() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn p2_identical_streams_are_bit_identical() {
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for i in 0..5_000u64 {
            let x = f64::from(u32::try_from(i.wrapping_mul(2_654_435_761) % 100_000).unwrap());
            a.observe(x);
            b.observe(x);
        }
        assert_eq!(a, b);
    }
}
