//! Spill tier for columnar stores: sealed pages serialized to a per-run
//! temporary file under a configurable byte budget.
//!
//! A [`SpillFile`] is an append-only frame store on disk. Writers encode a
//! sealed page (one frame, any byte layout they like) with
//! [`SpillFile::append_frame`] and keep only the returned [`SpillFrame`]
//! handle; readers hand the handle back to [`SpillFile::read_frame`] to
//! recover the bytes. The file lives in the system temp directory, is
//! private to the run, and is removed when the last handle drops — a
//! crash leaves at most one orphaned `plsim-spill-*.bin` for the OS
//! tmp-reaper.
//!
//! The byte budget itself comes from the `PLSIM_CAPTURE_BUDGET`
//! environment variable ([`CAPTURE_BUDGET_ENV`]): a plain byte count with
//! an optional `k`/`m`/`g` suffix (×1024 steps). Parsing lives here so
//! every layer (capture store, world config, CLI) agrees on the syntax.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Environment variable holding the capture byte budget
/// (e.g. `PLSIM_CAPTURE_BUDGET=8m`).
pub const CAPTURE_BUDGET_ENV: &str = "PLSIM_CAPTURE_BUDGET";

/// Parses a byte budget: decimal digits with an optional `k`/`m`/`g`
/// suffix (case-insensitive, ×1024 steps). Returns `None` for anything
/// malformed or zero — a zero budget would evict the open page.
#[must_use]
pub fn parse_byte_budget(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, scale) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1u64 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(scale).filter(|&b| b > 0)
}

/// The capture byte budget from [`CAPTURE_BUDGET_ENV`], if set and valid.
#[must_use]
pub fn capture_budget_from_env() -> Option<u64> {
    std::env::var(CAPTURE_BUDGET_ENV)
        .ok()
        .and_then(|v| parse_byte_budget(&v))
}

/// A frame handle: where one sealed page's bytes live in the spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillFrame {
    offset: u64,
    len: u32,
}

impl SpillFrame {
    /// Byte length of the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the frame is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Process-wide counter so concurrent runs (tests, sharded worlds) never
/// collide on a spill path.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

struct SpillInner {
    file: File,
    len: u64,
}

/// An append-only on-disk frame store for spilled pages.
///
/// Append and read are internally locked, so one `SpillFile` may be shared
/// (behind an `Arc`) by a store and its clones; frames are immutable once
/// written, so readback needs no coordination beyond the file lock.
pub struct SpillFile {
    path: PathBuf,
    inner: Mutex<SpillInner>,
}

impl std::fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillFile")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl SpillFile {
    /// Creates a fresh spill file in the system temp directory.
    ///
    /// # Panics
    ///
    /// Panics when the temp directory is not writable — a spill tier
    /// without a backing file cannot honor its budget, and silently
    /// falling back to RAM would defeat the point.
    #[must_use]
    pub fn create() -> SpillFile {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("plsim-spill-{}-{seq}.bin", std::process::id()));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot create spill file {}: {e}", path.display()));
        SpillFile {
            path,
            inner: Mutex::new(SpillInner { file, len: 0 }),
        }
    }

    /// Appends one frame and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (disk full): the budget contract cannot be
    /// kept once the spill tier stops accepting pages.
    pub fn append_frame(&self, bytes: &[u8]) -> SpillFrame {
        let mut inner = self.inner.lock().expect("spill file poisoned");
        let offset = inner.len;
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| inner.file.write_all(bytes))
            .unwrap_or_else(|e| panic!("spill write failed at {}: {e}", self.path.display()));
        inner.len = offset + bytes.len() as u64;
        SpillFrame {
            offset,
            len: u32::try_from(bytes.len()).expect("frame larger than 4 GiB"),
        }
    }

    /// Reads the frame back into `buf` (resized to the frame length).
    ///
    /// # Panics
    ///
    /// Panics on I/O failure or a handle from a different file.
    pub fn read_frame(&self, frame: SpillFrame, buf: &mut Vec<u8>) {
        buf.resize(frame.len(), 0);
        let mut inner = self.inner.lock().expect("spill file poisoned");
        assert!(
            frame.offset + u64::from(frame.len) <= inner.len,
            "spill frame out of range (foreign handle?)"
        );
        inner
            .file
            .seek(SeekFrom::Start(frame.offset))
            .and_then(|_| inner.file.read_exact(buf))
            .unwrap_or_else(|e| panic!("spill read failed at {}: {e}", self.path.display()));
    }

    /// Total bytes written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("spill file poisoned").len
    }

    /// Whether no frame has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Best effort: an undeletable temp file is the OS reaper's job.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_in_any_order() {
        let spill = SpillFile::create();
        let a = spill.append_frame(&[1, 2, 3]);
        let b = spill.append_frame(&[9; 100]);
        let c = spill.append_frame(&[]);
        assert_eq!(spill.len(), 103);
        let mut buf = Vec::new();
        spill.read_frame(b, &mut buf);
        assert_eq!(buf, vec![9; 100]);
        spill.read_frame(a, &mut buf);
        assert_eq!(buf, vec![1, 2, 3]);
        spill.read_frame(c, &mut buf);
        assert!(buf.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn file_is_removed_on_drop() {
        let spill = SpillFile::create();
        let path = spill.path.clone();
        spill.append_frame(&[42]);
        assert!(path.exists());
        drop(spill);
        assert!(!path.exists());
    }

    #[test]
    fn budget_parsing_accepts_suffixes() {
        assert_eq!(parse_byte_budget("1024"), Some(1024));
        assert_eq!(parse_byte_budget("4k"), Some(4096));
        assert_eq!(parse_byte_budget("4K"), Some(4096));
        assert_eq!(parse_byte_budget("2m"), Some(2 << 20));
        assert_eq!(parse_byte_budget("1g"), Some(1 << 30));
        assert_eq!(parse_byte_budget(" 8m "), Some(8 << 20));
        assert_eq!(parse_byte_budget("0"), None);
        assert_eq!(parse_byte_budget("0k"), None);
        assert_eq!(parse_byte_budget(""), None);
        assert_eq!(parse_byte_budget("abc"), None);
        assert_eq!(parse_byte_budget("-1"), None);
        assert_eq!(parse_byte_budget("9999999999999999999g"), None);
    }
}
