//! # plsim-workload — viewer populations and churn
//!
//! Synthesizes who watches a channel, from which ISP, on what access link,
//! and when they arrive and depart. The paper attributes the *level* of
//! traffic locality directly to the availability of same-ISP viewers
//! (popular channels → many TELE viewers → ~85% local traffic; unpopular →
//! fewer → ~55%), so population synthesis is the experimental knob that
//! drives every figure.
//!
//! The crate also contains a standalone stretched-exponential workload
//! generator ([`se_workload`]): the paper notes its characterization
//! "provides a basis to generate practical P2P streaming workloads for
//! simulation based studies", and experiment W1 round-trips that claim.
//!
//! # Examples
//!
//! ```
//! use plsim_workload::{ChannelClass, PopulationSpec, SessionPlan};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let spec = PopulationSpec::paper_default(ChannelClass::Popular);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let plan = SessionPlan::generate(&spec, 7200.0, &mut rng);
//! assert!(!plan.peers.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod population;
mod se;

pub use population::{ChannelClass, DayFactor, PeerPlan, PopulationSpec, SessionPlan};
pub use se::{se_workload, SeWorkloadSpec};
