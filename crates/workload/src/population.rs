//! Channel viewer populations: ISP mix, access links, arrivals, departures.

use plsim_net::{BandwidthClass, Isp};
use plsim_stats::{exponential, lognormal};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Channel popularity tier, the paper's main experimental contrast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelClass {
    /// A top-rated program: thousands of concurrent viewers, heavily
    /// dominated by Chinese residential users (mostly TELE).
    Popular,
    /// A niche program: one to two orders of magnitude fewer viewers, with
    /// a flatter ISP mix (the paper's Fig. 3 shows TELE ≈ CNC).
    Unpopular,
}

impl ChannelClass {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ChannelClass::Popular => "popular",
            ChannelClass::Unpopular => "unpopular",
        }
    }
}

/// Per-day random variation applied to a base spec (drives Figure 6's
/// 28-day series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayFactor {
    /// Multiplier on the steady-state viewer count.
    pub viewer_scale: f64,
    /// Multiplier on the Foreign mix weight. Foreign viewership of Chinese
    /// programming is far more volatile than domestic viewership, which is
    /// why the paper's Mason locality series swings while CNC/TELE are flat.
    pub foreign_scale: f64,
}

impl DayFactor {
    /// Samples the variation for one day.
    #[must_use]
    pub fn sample(rng: &mut SmallRng) -> Self {
        DayFactor {
            viewer_scale: lognormal(rng, 0.0, 0.18).clamp(0.5, 2.0),
            foreign_scale: lognormal(rng, 0.0, 0.7).clamp(0.1, 6.0),
        }
    }
}

/// Parameters of a channel's viewer population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Popularity tier (records intent; the numbers below do the work).
    pub class: ChannelClass,
    /// Steady-state concurrent viewer target.
    pub steady_viewers: usize,
    /// Relative ISP weights, in [`Isp::ALL`] order (TELE, CNC, CER,
    /// OtherCN, Foreign). Need not be normalized.
    pub isp_weights: [f64; 5],
    /// Mean session duration in seconds (lognormal with this mean).
    pub mean_session_secs: f64,
}

impl PopulationSpec {
    /// The population shapes used to reproduce the paper's figures.
    ///
    /// Popular: China-peak audience dominated by TELE (the paper's probe saw
    /// ~70% TELE on returned lists). Unpopular: much smaller with TELE ≈ CNC
    /// and CNC slightly ahead (Fig. 3a).
    #[must_use]
    pub fn paper_default(class: ChannelClass) -> Self {
        match class {
            ChannelClass::Popular => PopulationSpec {
                class,
                steady_viewers: 700,
                isp_weights: [0.56, 0.26, 0.02, 0.08, 0.08],
                mean_session_secs: 2400.0,
            },
            ChannelClass::Unpopular => PopulationSpec {
                class,
                steady_viewers: 110,
                isp_weights: [0.34, 0.40, 0.02, 0.12, 0.12],
                mean_session_secs: 1800.0,
            },
        }
    }

    /// A miniature population for fast unit/integration tests.
    #[must_use]
    pub fn tiny(class: ChannelClass) -> Self {
        let mut spec = PopulationSpec::paper_default(class);
        spec.steady_viewers = match class {
            ChannelClass::Popular => 60,
            ChannelClass::Unpopular => 24,
        };
        spec
    }

    /// Applies a day's variation, returning the perturbed spec.
    #[must_use]
    pub fn with_day(&self, day: DayFactor) -> PopulationSpec {
        let mut spec = self.clone();
        spec.steady_viewers = ((spec.steady_viewers as f64) * day.viewer_scale)
            .round()
            .max(4.0) as usize;
        spec.isp_weights[4] *= day.foreign_scale;
        spec
    }

    /// Samples an ISP according to the weights.
    pub fn sample_isp(&self, rng: &mut SmallRng) -> Isp {
        let total: f64 = self.isp_weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (isp, w) in Isp::ALL.iter().zip(self.isp_weights) {
            if x < w {
                return *isp;
            }
            x -= w;
        }
        Isp::Foreign
    }
}

/// Samples the access-link class for a viewer on `isp` (2008-era mix:
/// Chinese residential users overwhelmingly on ADSL, CERNET and US campus
/// users on fast links).
#[must_use]
pub fn sample_bandwidth_class(isp: Isp, rng: &mut SmallRng) -> BandwidthClass {
    let x: f64 = rng.random();
    match isp {
        Isp::Cer => BandwidthClass::Campus,
        Isp::Foreign => {
            if x < 0.45 {
                BandwidthClass::Campus
            } else if x < 0.80 {
                BandwidthClass::Cable
            } else {
                BandwidthClass::Office
            }
        }
        _ => {
            if x < 0.75 {
                BandwidthClass::Adsl
            } else if x < 0.95 {
                BandwidthClass::Cable
            } else {
                BandwidthClass::Office
            }
        }
    }
}

/// One planned viewer: who they are and when they are online.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerPlan {
    /// The viewer's ISP.
    pub isp: Isp,
    /// The viewer's access link.
    pub bandwidth: BandwidthClass,
    /// Join time in seconds from scenario start.
    pub join_s: f64,
    /// Leave time in seconds from scenario start (clamped to the horizon;
    /// a viewer staying to the end has `leave_s == horizon`).
    pub leave_s: f64,
}

/// The full churn schedule of one channel for one session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionPlan {
    /// All planned viewers in join order.
    pub peers: Vec<PeerPlan>,
}

impl SessionPlan {
    /// Generates the schedule for `horizon_secs` of simulated time.
    ///
    /// An initial cohort of `steady_viewers` joins during the first 90
    /// seconds (they represent the audience already present when the probes
    /// start), then Poisson arrivals at rate `steady/mean_session` keep the
    /// population near its target; session lengths are lognormal.
    #[must_use]
    pub fn generate(spec: &PopulationSpec, horizon_secs: f64, rng: &mut SmallRng) -> SessionPlan {
        let mut peers = Vec::new();
        let mean = spec.mean_session_secs;
        // Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
        let sigma: f64 = 0.9;
        let mu = mean.ln() - sigma * sigma / 2.0;

        let mut push = |join: f64, rng: &mut SmallRng| {
            let isp = spec.sample_isp(rng);
            let duration = lognormal(rng, mu, sigma).clamp(90.0, horizon_secs * 2.0);
            peers.push(PeerPlan {
                isp,
                bandwidth: sample_bandwidth_class(isp, rng),
                join_s: join,
                leave_s: (join + duration).min(horizon_secs),
            });
        };

        for _ in 0..spec.steady_viewers {
            let join = rng.random::<f64>() * 90.0;
            push(join, rng);
        }
        let rate = spec.steady_viewers as f64 / mean;
        let mut t = 90.0;
        loop {
            t += exponential(rng, 1.0 / rate);
            if t >= horizon_secs {
                break;
            }
            push(t, rng);
        }
        peers.sort_by(|a, b| a.join_s.partial_cmp(&b.join_s).expect("finite times"));
        SessionPlan { peers }
    }

    /// Number of planned viewers online at time `t`.
    #[must_use]
    pub fn online_at(&self, t: f64) -> usize {
        self.peers
            .iter()
            .filter(|p| p.join_s <= t && p.leave_s > t)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn popular_plan_is_larger_and_tele_dominated() {
        let mut r = rng();
        let pop = SessionPlan::generate(
            &PopulationSpec::paper_default(ChannelClass::Popular),
            7200.0,
            &mut r,
        );
        let unpop = SessionPlan::generate(
            &PopulationSpec::paper_default(ChannelClass::Unpopular),
            7200.0,
            &mut r,
        );
        assert!(pop.peers.len() > 3 * unpop.peers.len());
        let tele = pop.peers.iter().filter(|p| p.isp == Isp::Tele).count();
        assert!(
            tele as f64 > 0.45 * pop.peers.len() as f64,
            "tele fraction {}",
            tele as f64 / pop.peers.len() as f64
        );
    }

    #[test]
    fn population_stays_near_steady_state() {
        let mut r = rng();
        let spec = PopulationSpec::paper_default(ChannelClass::Popular);
        let plan = SessionPlan::generate(&spec, 7200.0, &mut r);
        for t in [600.0, 3600.0, 7000.0] {
            let online = plan.online_at(t);
            let target = spec.steady_viewers as f64;
            assert!(
                (online as f64) > 0.5 * target && (online as f64) < 1.8 * target,
                "online {online} at t={t}, target {target}"
            );
        }
    }

    #[test]
    fn joins_are_sorted_and_leave_after_join() {
        let mut r = rng();
        let plan = SessionPlan::generate(
            &PopulationSpec::tiny(ChannelClass::Unpopular),
            1800.0,
            &mut r,
        );
        for w in plan.peers.windows(2) {
            assert!(w[0].join_s <= w[1].join_s);
        }
        for p in &plan.peers {
            assert!(p.leave_s > p.join_s);
            assert!(p.leave_s <= 1800.0);
        }
    }

    #[test]
    fn cer_viewers_are_campus_attached() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(
                sample_bandwidth_class(Isp::Cer, &mut r),
                BandwidthClass::Campus
            );
        }
    }

    #[test]
    fn day_factor_perturbs_foreign_share() {
        let mut r = rng();
        let base = PopulationSpec::paper_default(ChannelClass::Popular);
        let mut scales = Vec::new();
        for _ in 0..50 {
            let day = DayFactor::sample(&mut r);
            let spec = base.with_day(day);
            scales.push(spec.isp_weights[4] / base.isp_weights[4]);
            assert!(spec.steady_viewers >= 4);
        }
        let spread = scales.iter().cloned().fold(0.0f64, f64::max)
            / scales.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 2.0, "foreign share should vary day to day");
    }

    #[test]
    fn sample_isp_respects_zero_weight() {
        let mut r = rng();
        let mut spec = PopulationSpec::paper_default(ChannelClass::Popular);
        spec.isp_weights = [1.0, 0.0, 0.0, 0.0, 0.0];
        for _ in 0..100 {
            assert_eq!(spec.sample_isp(&mut r), Isp::Tele);
        }
    }
}
