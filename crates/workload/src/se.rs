//! Stretched-exponential workload generation (experiment W1).
//!
//! The paper closes §1 noting that its workload characterization "provides a
//! basis to generate practical P2P streaming workloads for simulation based
//! studies". This module is that generator: given SE parameters it produces
//! per-neighbor contribution vectors whose rank distribution refits to the
//! same model.

use plsim_stats::lognormal;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Parameters of a stretched-exponential rank distribution
/// `y_i^c = −a·log10(i) + b`, with `b` derived from the paper's
/// normalization `y_n = 1` (Eq. 2: `b = 1 + a·log10 n`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeWorkloadSpec {
    /// Stretch exponent (the paper fits c ∈ [0.2, 0.4] for PPLive traces).
    pub c: f64,
    /// Slope magnitude in SE scale.
    pub a: f64,
    /// Number of ranked contributors (e.g. connected peers).
    pub n: usize,
    /// Multiplicative lognormal noise sigma (0 = exact model values).
    pub noise_sigma: f64,
}

impl SeWorkloadSpec {
    /// The paper's Figure 11(b) fit (TELE probe, popular program):
    /// c = 0.35, a = 5.483, n = 326.
    #[must_use]
    pub fn fig11() -> Self {
        SeWorkloadSpec {
            c: 0.35,
            a: 5.483,
            n: 326,
            noise_sigma: 0.0,
        }
    }

    /// The derived intercept `b = 1 + a·log10 n`.
    #[must_use]
    pub fn b(&self) -> f64 {
        1.0 + self.a * (self.n as f64).log10()
    }
}

/// Generates a descending contribution vector following the spec.
///
/// With `noise_sigma > 0`, each value is multiplied by lognormal noise and
/// the vector re-sorted, modelling measurement scatter.
///
/// # Panics
///
/// Panics if `c`, `a` are not positive or `n` is zero.
#[must_use]
pub fn se_workload(spec: &SeWorkloadSpec, rng: &mut SmallRng) -> Vec<f64> {
    assert!(
        spec.c > 0.0 && spec.a > 0.0,
        "SE parameters must be positive"
    );
    assert!(spec.n > 0, "need at least one contributor");
    let b = spec.b();
    let mut values: Vec<f64> = (1..=spec.n)
        .map(|i| {
            let yc = b - spec.a * (i as f64).log10();
            let y = yc.max(1e-9).powf(1.0 / spec.c);
            if spec.noise_sigma > 0.0 {
                y * lognormal(rng, 0.0, spec.noise_sigma)
            } else {
                y
            }
        })
        .collect();
    values.sort_by(|x, y| y.partial_cmp(x).expect("finite workload values"));
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use plsim_stats::{stretched_exp_fit, zipf_fit};
    use rand::SeedableRng;

    #[test]
    fn exact_workload_refits_to_its_parameters() {
        let spec = SeWorkloadSpec::fig11();
        let mut rng = SmallRng::seed_from_u64(5);
        let w = se_workload(&spec, &mut rng);
        assert_eq!(w.len(), spec.n);
        let fit = stretched_exp_fit(&w).expect("fit");
        assert!((fit.c - spec.c).abs() < 0.051, "c = {}", fit.c);
        assert!((fit.a - spec.a).abs() / spec.a < 0.25, "a = {}", fit.a);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn noisy_workload_still_prefers_se_over_zipf() {
        let spec = SeWorkloadSpec {
            noise_sigma: 0.3,
            ..SeWorkloadSpec::fig11()
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let w = se_workload(&spec, &mut rng);
        let se = stretched_exp_fit(&w).expect("se fit");
        let zipf = zipf_fit(&w).expect("zipf fit");
        assert!(se.r2 > zipf.r2, "se {} vs zipf {}", se.r2, zipf.r2);
        assert!(se.r2 > 0.9);
    }

    #[test]
    fn workload_is_descending_and_positive() {
        let spec = SeWorkloadSpec {
            c: 0.4,
            a: 10.0,
            n: 200,
            noise_sigma: 0.2,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let w = se_workload(&spec, &mut rng);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert!(w.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn tail_value_honours_normalization() {
        let spec = SeWorkloadSpec::fig11();
        let mut rng = SmallRng::seed_from_u64(8);
        let w = se_workload(&spec, &mut rng);
        // y_n = 1 by Eq. 2.
        assert!((w.last().unwrap() - 1.0).abs() < 1e-6);
    }
}
