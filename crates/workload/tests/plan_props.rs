//! Property tests for population synthesis.

use plsim_workload::{ChannelClass, DayFactor, PopulationSpec, SessionPlan};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Plans are sorted, bounded by the horizon, and leave strictly after
    /// join, for every seed/horizon/size combination.
    #[test]
    fn plan_invariants(
        seed in any::<u64>(),
        horizon in 300.0f64..7200.0,
        viewers in 5usize..200,
    ) {
        let mut spec = PopulationSpec::paper_default(ChannelClass::Popular);
        spec.steady_viewers = viewers;
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = SessionPlan::generate(&spec, horizon, &mut rng);
        prop_assert!(!plan.peers.is_empty());
        for w in plan.peers.windows(2) {
            prop_assert!(w[0].join_s <= w[1].join_s);
        }
        for p in &plan.peers {
            prop_assert!(p.join_s >= 0.0);
            prop_assert!(p.leave_s > p.join_s);
            prop_assert!(p.leave_s <= horizon);
        }
    }

    /// The same seed always generates the identical plan.
    #[test]
    fn plan_is_deterministic(seed in any::<u64>()) {
        let spec = PopulationSpec::tiny(ChannelClass::Unpopular);
        let gen = |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            SessionPlan::generate(&spec, 900.0, &mut rng)
        };
        prop_assert_eq!(gen(seed), gen(seed));
    }

    /// Day factors keep the population positive and within their clamps.
    #[test]
    fn day_factors_are_clamped(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let day = DayFactor::sample(&mut rng);
        prop_assert!((0.5..=2.0).contains(&day.viewer_scale));
        prop_assert!((0.1..=6.0).contains(&day.foreign_scale));
        let spec = PopulationSpec::paper_default(ChannelClass::Popular).with_day(day);
        prop_assert!(spec.steady_viewers >= 4);
        prop_assert!(spec.isp_weights.iter().all(|w| *w >= 0.0));
    }

    /// ISP sampling follows the configured weights within tolerance.
    #[test]
    fn isp_sampling_tracks_weights(seed in any::<u64>(), tele_w in 0.1f64..0.9) {
        let mut spec = PopulationSpec::paper_default(ChannelClass::Popular);
        spec.isp_weights = [tele_w, 1.0 - tele_w, 0.0, 0.0, 0.0];
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 3000;
        let tele = (0..n)
            .filter(|_| spec.sample_isp(&mut rng) == plsim_net::Isp::Tele)
            .count();
        let frac = tele as f64 / f64::from(n);
        prop_assert!((frac - tele_w).abs() < 0.06, "frac {frac} vs weight {tele_w}");
    }
}
