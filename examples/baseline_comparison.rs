//! Ablation study: compares the PPLive design (neighbor referral +
//! latency-ordered connection + latency-weighted scheduling) against the
//! BitTorrent-style tracker-only baseline and two intermediate variants,
//! quantifying the §1/§4 discussion of the paper ("the tracker based peer
//! selection strategy in BitTorrent often causes unnecessary bandwidth
//! waste").
//!
//! ```sh
//! cargo run --release --example baseline_comparison [tiny|reduced|paper]
//! ```

use pplive_locality::{
    ablation, render_ablation, render_underlay_ablation, underlay_ablation, Scale,
};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Scale::Paper,
        Some("tiny") => Scale::Tiny,
        _ => Scale::Reduced,
    };
    println!("running the popular channel under 4 protocol variants ({scale:?} scale)...\n");
    let t0 = std::time::Instant::now();
    let results = ablation(scale, 42);
    println!("{}", render_ablation(&results));

    let pplive = results
        .iter()
        .find(|r| r.variant.starts_with("PPLive"))
        .expect("PPLive variant");
    let tracker = results
        .iter()
        .find(|r| r.variant.starts_with("Tracker-only"))
        .expect("tracker-only variant");
    println!(
        "PPLive keeps {:.1}% of the probe's traffic inside its ISP; the tracker-only baseline keeps {:.1}% — {:.1}x more cross-ISP traffic.",
        100.0 * pplive.tele_locality,
        100.0 * tracker.tele_locality,
        (1.0 - tracker.tele_locality) / (1.0 - pplive.tele_locality).max(1e-9)
    );
    println!("\nunderlay-mechanism ablation (same protocol, weakened underlays):\n");
    println!(
        "{}",
        render_underlay_ablation(&underlay_ablation(scale, 42))
    );
    println!("(wall time {:.1?})", t0.elapsed());
}
