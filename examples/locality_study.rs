//! The full reproduction: regenerates every table and figure of the
//! paper's evaluation section (Figures 2–18, Table 1) plus the design
//! ablations and the workload round trip, printing the rows/series the
//! paper reports.
//!
//! ```sh
//! cargo run --release --example locality_study [tiny|reduced|paper] [days]
//! ```
//!
//! `days` controls the Figure 6 series length (default 28, like the
//! study's four weeks).

use pplive_locality::{
    ablation, fig_6, figs_11_to_14, figs_15_to_18, figs_2_to_5, render_ablation, render_fig11_14,
    render_fig15_18, render_fig7_10, render_table1, response_times, workload_round_trip, FourWeeks,
    Scale, Suite,
};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Scale::Paper,
        Some("tiny") => Scale::Tiny,
        _ => Scale::Reduced,
    };
    let days: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(28);

    println!("# PPLive traffic-locality study — full reproduction ({scale:?} scale)\n");
    let t0 = std::time::Instant::now();
    let suite = Suite::run(scale, 42);
    println!(
        "(both channel sessions simulated in {:.1?}; popular processed {} events)\n",
        t0.elapsed(),
        suite.popular.output.sim.events_processed
    );

    println!("## Figures 2–5: ISP-level traffic locality\n");
    for fig in figs_2_to_5(&suite) {
        println!("{}", fig.render());
    }

    println!("## Figure 6: locality over {days} days\n");
    let t6 = std::time::Instant::now();
    let weeks = fig_6(days, scale, 42);
    println!("{}", weeks.render());
    println!(
        "volatility (std dev): popular Mason {:.3} vs popular TELE {:.3} (paper: Mason varies much more)",
        FourWeeks::volatility(&weeks.popular, |d| d.mason),
        FourWeeks::volatility(&weeks.popular, |d| d.tele),
    );
    println!(
        "({days} days x 2 channels simulated in {:.1?})\n",
        t6.elapsed()
    );

    let cells = response_times(&suite);
    println!("## Figures 7–10: peer-list response times\n");
    println!("{}", render_fig7_10(&cells));
    // The paper's figures are time series; print the TELE-popular probe's
    // windowed series as a representative sample.
    {
        use plsim_net::IspGroup;
        use pplive_locality::ProbeSite;
        let rep = suite.popular.report(ProbeSite::Tele);
        println!("TELE-popular peer-list RT series (300 s windows, mean seconds):");
        for group in IspGroup::ALL {
            let series = rep.peer_list_rt.windowed(group, 300);
            let row: Vec<String> = series
                .iter()
                .map(|(t, avg, n)| format!("{}m:{:.2}({n})", t / 60, avg))
                .collect();
            println!("  {:5} {}", group.label(), row.join("  "));
        }
        println!();
    }
    println!("## Table 1: data-request response times\n");
    println!("{}", render_table1(&cells));

    println!("## Figures 11–14: connections and contributions\n");
    println!("{}", render_fig11_14(&figs_11_to_14(&suite)));

    println!("## Figures 15–18: request count vs RTT\n");
    println!("{}", render_fig15_18(&figs_15_to_18(&suite)));

    println!("## Ablations (A1/A2): what creates the locality\n");
    let t_a = std::time::Instant::now();
    println!("{}", render_ablation(&ablation(scale, 42)));
    println!("(4 variants simulated in {:.1?})\n", t_a.elapsed());

    println!("## W1: stretched-exponential workload generator round trip\n");
    for sigma in [0.0, 0.3] {
        let rt = workload_round_trip(sigma, 42);
        println!(
            "noise={sigma}: generated (c={:.2}, a={:.2}, n={}) -> refit c={:.2}, a={:.2}, R²={:.3}; zipf R²={:.3}; top10%={:.1}%",
            rt.spec.c,
            rt.spec.a,
            rt.spec.n,
            rt.refit.0,
            rt.refit.1,
            rt.refit.2,
            rt.zipf_r2,
            100.0 * rt.top10
        );
    }

    println!("\ntotal wall time: {:.1?}", t0.elapsed());
}
