//! The paper's central contrast: traffic locality on a popular vs an
//! unpopular live channel, measured from probes in TELE, CNC and a US
//! campus ("Mason"), reproducing Figures 2–5 and the §3.3 response-time
//! observations.
//!
//! ```sh
//! cargo run --release --example popular_vs_unpopular [tiny|reduced|paper]
//! ```

use pplive_locality::{figs_2_to_5, render_fig7_10, render_table1, response_times, Scale, Suite};

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("paper") => Scale::Paper,
        Some("tiny") => Scale::Tiny,
        _ => Scale::Reduced,
    }
}

fn main() {
    let scale = scale_from_args();
    println!("running popular + unpopular sessions at {scale:?} scale...\n");
    let suite = Suite::run(scale, 42);

    println!("== Figures 2–5: ISP-level locality ==\n");
    for fig in figs_2_to_5(&suite) {
        println!("{}", fig.render());
    }

    let cells = response_times(&suite);
    println!("== Figures 7–10: peer-list response times (per ISP group) ==\n");
    println!("{}", render_fig7_10(&cells));
    println!("== Table 1: data-request response times ==\n");
    println!("{}", render_table1(&cells));

    println!("Key observations to compare with the paper:");
    let figs = figs_2_to_5(&suite);
    println!(
        "  popular TELE locality {:.1}% (paper: >85%), unpopular TELE {:.1}% (paper: ~55%)",
        100.0 * figs[0].locality,
        100.0 * figs[1].locality
    );
    println!(
        "  popular Mason foreign share {:.1}% (paper: ~57%), unpopular Mason {:.1}% (paper: small)",
        100.0 * figs[2].locality,
        100.0 * figs[3].locality
    );
}
