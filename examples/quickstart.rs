//! Quickstart: simulate one small PPLive live-streaming session with a
//! TELE probe and print the headline traffic-locality numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plsim_net::Isp;
use plsim_workload::ChannelClass;
use pplive_locality::{pct, ProbeSite, Scale, Scenario};

fn main() {
    // A popular channel at test scale: ~70 concurrent viewers, 6 minutes.
    let scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 42);
    println!("simulating a small popular live channel (seed 42)...");
    let run = scenario.run();

    println!(
        "done: {} events, {} messages ({} dropped)",
        run.output.sim.events_processed,
        run.output.sim.messages_sent,
        run.output.sim.messages_dropped
    );

    let report = run.report(ProbeSite::Tele);
    println!("\nTELE probe (an ordinary ADSL client in ChinaTelecom):");
    println!(
        "  peer lists returned {} addresses, {} of them in TELE",
        report.returned.total(),
        pct(report.returned_home_fraction())
    );
    println!(
        "  downloaded {} KiB in {} transmissions",
        report.data.bytes.total() / 1024,
        report.data.transmissions.total()
    );
    println!(
        "  traffic locality: {} of bytes came from TELE peers",
        pct(report.locality())
    );
    for isp in Isp::ALL {
        println!("    {:8} {:>12} bytes", isp.label(), report.data.bytes[isp]);
    }

    if let Some(se) = report.contributions.se {
        println!(
            "\n  request rank distribution: stretched-exponential fit c={:.2}, R²={:.3}",
            se.c, se.r2
        );
    }
    if let Some(r) = report.contributions.rtt_correlation {
        println!("  corr(log requests, log RTT) = {r:.3} (negative = near peers preferred)");
    }
}
