//! Standalone stretched-exponential workload generator (experiment W1).
//!
//! The paper closes its introduction noting that the workload
//! characterization "provides a basis to generate practical P2P streaming
//! workloads for simulation based studies". This example generates
//! per-neighbor contribution workloads from the paper's fitted parameters,
//! verifies they refit to the same model, and prints them in a form other
//! simulators can consume.
//!
//! ```sh
//! cargo run --release --example workload_generator [n_peers] [c] [a]
//! ```

use plsim_stats::{stretched_exp_fit, top_share, zipf_fit};
use plsim_workload::{se_workload, SeWorkloadSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(326);
    let c: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.35);
    let a: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5.483);

    let spec = SeWorkloadSpec {
        c,
        a,
        n,
        noise_sigma: 0.25,
    };
    let mut rng = SmallRng::seed_from_u64(2008);
    let workload = se_workload(&spec, &mut rng);

    println!("# stretched-exponential workload: n={n}, c={c}, a={a} (Fig. 11b defaults)");
    println!("# rank  requests");
    for (i, v) in workload.iter().enumerate().take(20) {
        println!("{:>6}  {:.1}", i + 1, v);
    }
    println!("  ...   ({} more rows)", n.saturating_sub(20));

    let se = stretched_exp_fit(&workload).expect("SE refit");
    let zipf = zipf_fit(&workload).expect("Zipf fit");
    println!("\nverification:");
    println!(
        "  SE refit:  c={:.2}, a={:.2}, b={:.2}, R²={:.4}",
        se.c, se.a, se.b, se.r2
    );
    println!(
        "  Zipf fit:  alpha={:.2}, R²={:.4} (worse, as the paper found)",
        zipf.alpha, zipf.r2
    );
    println!(
        "  top 10% of peers contribute {:.1}% of requests (paper: ~70%)",
        100.0 * top_share(&workload, 0.1).expect("top share")
    );
    assert!(se.r2 > zipf.r2, "SE must outfit Zipf on SE data");
}
