//! Root library: re-exports the reproduction harness for integration tests and examples.
#![forbid(unsafe_code)]
pub use pplive_locality as harness;
