//! Integration test: the referral design produces more ISP-level locality
//! than the tracker-only baseline (the paper's §1/§4 discussion).

use plsim_node::PeerConfig;
use plsim_workload::ChannelClass;
use pplive_locality::{ProbeSite, Scale, Scenario};

/// Average TELE-probe locality over a few seeds under a peer config.
fn mean_locality(cfg: PeerConfig, seeds: &[u64]) -> f64 {
    let mut total = 0.0;
    for &seed in seeds {
        let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, seed);
        scenario.peer_config = cfg;
        let run = scenario.run();
        total += run.report(ProbeSite::Tele).locality();
    }
    total / seeds.len() as f64
}

#[test]
fn referral_beats_tracker_only_on_locality() {
    let seeds = [1, 2, 3, 4, 5];
    let pplive = mean_locality(PeerConfig::default(), &seeds);
    let baseline = mean_locality(PeerConfig::tracker_only_baseline(), &seeds);
    assert!(
        pplive > baseline,
        "PPLive locality {pplive:.3} should beat tracker-only {baseline:.3}"
    );
    // And it should beat it by a meaningful margin, not noise.
    assert!(
        pplive - baseline > 0.1,
        "margin too small: {pplive:.3} vs {baseline:.3}"
    );
}

#[test]
fn baseline_still_streams() {
    // The baseline is worse for the network, not broken for the user.
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 5);
    scenario.peer_config = PeerConfig::tracker_only_baseline();
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    assert!(report.data.bytes.total() > 1_000_000);
}
