//! Integration tests: a run is a pure function of its seed.

use plsim_workload::ChannelClass;
use pplive_locality::{ProbeSite, Scale, Scenario};

#[test]
fn identical_seeds_give_identical_runs() {
    let run = |seed| Scenario::new(ChannelClass::Unpopular, Scale::Tiny, seed).run();
    let a = run(7);
    let b = run(7);
    assert_eq!(a.output.sim.events_processed, b.output.sim.events_processed);
    assert_eq!(a.output.sim.messages_sent, b.output.sim.messages_sent);
    assert_eq!(a.output.records.len(), b.output.records.len());
    // Full record streams match, not just counts.
    assert_eq!(a.output.records, b.output.records);
    let ra = a.report(ProbeSite::Tele);
    let rb = b.report(ProbeSite::Tele);
    assert_eq!(ra.data.bytes, rb.data.bytes);
    assert_eq!(ra.returned, rb.returned);
}

#[test]
fn different_seeds_give_different_runs() {
    let run = |seed| Scenario::new(ChannelClass::Unpopular, Scale::Tiny, seed).run();
    let a = run(7);
    let b = run(8);
    assert_ne!(
        (a.output.sim.events_processed, a.output.records.len()),
        (b.output.sim.events_processed, b.output.records.len()),
        "different seeds should perturb the run"
    );
}

#[test]
fn peer_stats_are_deterministic_too() {
    let run = |seed| Scenario::new(ChannelClass::Unpopular, Scale::Tiny, seed).run();
    let a = run(11);
    let b = run(11);
    assert_eq!(a.output.peer_stats, b.output.peer_stats);
}
