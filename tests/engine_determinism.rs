//! Integration tests: the parallel experiment engine is a pure
//! reordering of work — its output is byte-identical to a sequential
//! run of the same artifacts at the same seed.

use pplive_locality::{
    ablation_on, fig_6_on, underlay_ablation_on, JobPool, Scale, Suite,
};

const SEED: u64 = 42;

fn seq() -> JobPool {
    JobPool::sequential()
}

fn par() -> JobPool {
    JobPool::new(4)
}

#[test]
fn suite_parallel_is_bit_identical_to_sequential() {
    let a = Suite::run_on(&seq(), Scale::Tiny, SEED);
    let b = Suite::run_on(&par(), Scale::Tiny, SEED);
    for (s, p) in [(&a.popular, &b.popular), (&a.unpopular, &b.unpopular)] {
        assert_eq!(s.output.sim, p.output.sim, "kernel counters diverged");
        assert_eq!(s.output.records, p.output.records, "traces diverged");
        assert_eq!(s.output.peer_stats, p.output.peer_stats);
    }
}

#[test]
fn multi_seed_sweep_is_order_stable() {
    let seeds = [1u64, 2, 3];
    let a = Suite::run_seeds_on(&seq(), Scale::Tiny, &seeds);
    let b = Suite::run_seeds_on(&par(), Scale::Tiny, &seeds);
    assert_eq!(a.len(), b.len());
    for (s, p) in a.iter().zip(&b) {
        assert_eq!(s.popular.output.records, p.popular.output.records);
        assert_eq!(s.unpopular.output.records, p.unpopular.output.records);
    }
}

#[test]
fn ablation_parallel_matches_sequential() {
    let a = ablation_on(&seq(), Scale::Tiny, SEED);
    let b = ablation_on(&par(), Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn underlay_ablation_parallel_matches_sequential() {
    let a = underlay_ablation_on(&seq(), Scale::Tiny, SEED);
    let b = underlay_ablation_on(&par(), Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn fig_6_parallel_matches_sequential() {
    let a = fig_6_on(&seq(), 2, Scale::Tiny, SEED);
    let b = fig_6_on(&par(), 2, Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
