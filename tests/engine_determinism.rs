//! Integration tests: the parallel experiment engine is a pure
//! reordering of work — its output is byte-identical to a sequential
//! run of the same artifacts at the same seed, with or without a fault
//! schedule attached.

use plsim_des::SimTime;
use plsim_net::{BandwidthClass, Isp, LinkFault};
use plsim_node::{run_world, FaultPlan, ProbeSpec, WorldConfig, WorldOutput};
use plsim_workload::{PeerPlan, SessionPlan};
use pplive_locality::{
    ablation_on, fig_6_on, frontier_csv, locality_frontier_on, underlay_ablation_on, JobPool,
    Scale, Suite,
};
use proptest::prelude::*;

const SEED: u64 = 42;

fn seq() -> JobPool {
    JobPool::sequential()
}

fn par() -> JobPool {
    JobPool::new(4)
}

#[test]
fn suite_parallel_is_bit_identical_to_sequential() {
    let a = Suite::run_on(&seq(), Scale::Tiny, SEED);
    let b = Suite::run_on(&par(), Scale::Tiny, SEED);
    for (s, p) in [(&a.popular, &b.popular), (&a.unpopular, &b.unpopular)] {
        assert_eq!(s.output.sim, p.output.sim, "kernel counters diverged");
        assert_eq!(s.output.records, p.output.records, "traces diverged");
        assert_eq!(s.output.peer_stats, p.output.peer_stats);
        assert_eq!(s.output.metrics, p.output.metrics, "metrics diverged");
    }
}

#[test]
fn multi_seed_sweep_is_order_stable() {
    let seeds = [1u64, 2, 3];
    let a = Suite::run_seeds_on(&seq(), Scale::Tiny, &seeds);
    let b = Suite::run_seeds_on(&par(), Scale::Tiny, &seeds);
    assert_eq!(a.len(), b.len());
    for (s, p) in a.iter().zip(&b) {
        assert_eq!(s.popular.output.records, p.popular.output.records);
        assert_eq!(s.unpopular.output.records, p.unpopular.output.records);
    }
}

#[test]
fn ablation_parallel_matches_sequential() {
    let a = ablation_on(&seq(), Scale::Tiny, SEED);
    let b = ablation_on(&par(), Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn frontier_sweep_parallel_matches_sequential() {
    // The policy sweep fans one session per policy through the pool; its
    // merged output (and the CSV serialization the studies commit) must be
    // byte-identical to a sequential sweep.
    let a = locality_frontier_on(&seq(), Scale::Tiny, SEED, true);
    let b = locality_frontier_on(&par(), Scale::Tiny, SEED, true);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(frontier_csv(&a), frontier_csv(&b));
}

#[test]
fn underlay_ablation_parallel_matches_sequential() {
    let a = underlay_ablation_on(&seq(), Scale::Tiny, SEED);
    let b = underlay_ablation_on(&par(), Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn fig_6_parallel_matches_sequential() {
    let a = fig_6_on(&seq(), 2, Scale::Tiny, SEED);
    let b = fig_6_on(&par(), 2, Scale::Tiny, SEED);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

// ---- FaultPlan determinism property ------------------------------------

/// A 150 s micro world — a dozen viewers split across TELE and CNC plus
/// one captured probe — small enough to run hundreds of times inside a
/// property test while still exercising trackers, gossip and playback.
fn micro_world(seed: u64, faults: FaultPlan) -> WorldConfig {
    let peers = (0..12u64)
        .map(|i| PeerPlan {
            isp: if i % 3 == 0 { Isp::Cnc } else { Isp::Tele },
            bandwidth: BandwidthClass::Adsl,
            join_s: (i * 5) as f64,
            leave_s: 150.0,
        })
        .collect();
    let mut cfg = WorldConfig::new(seed, SessionPlan { peers }, SimTime::from_secs(150));
    cfg.probes = vec![ProbeSpec {
        isp: Isp::Tele,
        bandwidth: BandwidthClass::Adsl,
        join_s: 30.0,
    }];
    cfg.faults = faults;
    cfg
}

fn assert_same_output(a: &WorldOutput, b: &WorldOutput, what: &str) {
    assert_eq!(a.sim, b.sim, "{what}: kernel counters diverged");
    assert_eq!(a.records, b.records, "{what}: traces diverged");
    assert_eq!(a.peer_stats, b.peer_stats, "{what}: peer stats diverged");
    assert_eq!(a.fault_marks, b.fault_marks, "{what}: fault marks diverged");
    assert_eq!(a.metrics, b.metrics, "{what}: metrics snapshots diverged");
}

proptest! {
    /// Any generated fault schedule — outages, storms, partitions, ramps,
    /// in any combination — leaves the engine deterministic: two
    /// sequential runs at the same seed are bit-identical, and so are runs
    /// fanned out through a [`JobPool`].
    #[test]
    fn any_fault_plan_is_seed_stable_and_pool_invariant(
        seed in 0u64..1_000_000,
        events in collection::vec((0u32..7, 5u64..110, 10u64..60, 0.05f64..0.6), 0..4),
    ) {
        let mut plan = FaultPlan::new();
        for &(kind, at_s, gap_s, frac) in &events {
            let at = SimTime::from_secs(at_s);
            let until = SimTime::from_secs(at_s + gap_s);
            plan = match kind {
                0 => plan.tracker_blackout(at, until),
                1 => plan.tracker_outage(at),
                2 => plan.bootstrap_outage(at, Some(until)),
                3 => plan.churn_storm(at, frac, Some(SimTime::from_secs(gap_s))),
                4 => plan.link(LinkFault::partition(Isp::Tele, Isp::Cnc, at, until)),
                5 => plan.link(LinkFault::loss_ramp(
                    at,
                    until,
                    SimTime::from_secs(gap_s / 2),
                    frac * 0.3,
                )),
                _ => plan.link(LinkFault::degraded_interconnect(at, until, frac)),
            };
        }
        let cfg = micro_world(seed, plan);

        let a = run_world(&cfg);
        let b = run_world(&cfg);
        assert_same_output(&a, &b, "sequential rerun");

        let pooled = JobPool::new(2).map(vec![cfg.clone(), cfg], |c| run_world(&c));
        for out in &pooled {
            assert_same_output(&a, out, "pooled run");
        }
    }
}
