//! Integration tests: failure injection.
//!
//! The paper's key structural finding is that PPLive trackers are mere
//! entry points: "once achieving satisfactory playback performance through
//! its neighbors in the network, a peer significantly reduces the frequency
//! of querying tracker servers". A corollary worth testing: killing all
//! trackers mid-session must not stop the streaming mesh.

use plsim_des::SimTime;
use pplive_locality::{ProbeSite, Scale, Scenario};
use plsim_workload::ChannelClass;

#[test]
fn streaming_survives_total_tracker_outage() {
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 21);
    // Kill every tracker two minutes in (probes join at 120 s).
    scenario.tracker_outage_at = Some(SimTime::from_secs(150));
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);

    // The probe must keep receiving data well after the outage.
    let last_reply = run
        .output
        .records
        .iter()
        .filter(|r| r.probe == report.probe)
        .filter(|r| {
            matches!(
                r.kind,
                plsim_capture::RecordKind::DataReply { .. }
            ) && r.direction == plsim_capture::Direction::Inbound
        })
        .map(|r| r.t)
        .max()
        .expect("probe received data");
    assert!(
        last_reply > SimTime::from_secs(300),
        "data flow died with the trackers (last reply at {last_reply})"
    );

    let stats = run
        .output
        .peer_stats
        .iter()
        .find(|s| s.node == report.probe)
        .expect("probe stats");
    assert!(stats.playback_started.is_some());
    assert!(
        stats.stall_ratio() < 0.5,
        "stall ratio too high after outage: {}",
        stats.stall_ratio()
    );
}

#[test]
fn tracker_only_baseline_collapses_without_trackers() {
    use plsim_node::PeerConfig;
    // In the BitTorrent-style baseline, peers never learn about each other
    // except through trackers. If trackers die immediately, late joiners
    // cannot find anyone.
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 21);
    scenario.peer_config = PeerConfig::tracker_only_baseline();
    scenario.tracker_outage_at = Some(SimTime::from_secs(30));
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    // The probe joins at 120 s, after the outage: with no referral channel
    // it can discover no peers and downloads (almost) nothing.
    assert!(
        report.data.bytes.total() < 1_000_000,
        "tracker-only peer should starve without trackers, got {} bytes",
        report.data.bytes.total()
    );
}

#[test]
fn lossy_network_still_streams() {
    use plsim_net::LinkModel;
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 33);
    scenario.link = LinkModel {
        loss_intra: 0.03,
        loss_cross_cn: 0.08,
        loss_transoceanic: 0.12,
        ..LinkModel::default()
    };
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    assert!(
        report.data.bytes.total() > 1_000_000,
        "streaming should survive heavy loss, got {} bytes",
        report.data.bytes.total()
    );
    // Loss shows up as unanswered requests, which the analysis must count.
    assert!(run.output.sim.messages_dropped > 0);
}
