//! Integration tests: the chaos matrix.
//!
//! Every scenario here runs under a deterministic [`FaultPlan`] and must
//! (a) exhibit the qualitative behaviour the paper predicts — trackers are
//! mere entry points, churn is survivable, locality orderings hold where
//! the mesh survives — and (b) pass the runtime invariant checker, so a
//! faulted run that silently corrupts the simulation fails loudly instead
//! of producing quietly-wrong figures.

use plsim_capture::{Direction, KindRef};
use plsim_des::SimTime;
use plsim_net::{Isp, LinkFault};
use plsim_workload::ChannelClass;
use pplive_locality::{FaultPlan, ProbeSite, Scale, Scenario, ScenarioRun};

/// Latest inbound data reply captured at `probe`.
fn last_data_reply(run: &ScenarioRun, probe: plsim_des::NodeId) -> Option<SimTime> {
    run.output
        .records
        .rows()
        .filter(|r| r.probe == probe && r.direction == Direction::Inbound)
        .filter(|r| matches!(r.kind, KindRef::DataReply { .. }))
        .map(|r| r.t)
        .max()
}

fn probe_stats(run: &ScenarioRun, probe: plsim_des::NodeId) -> &plsim_node::PeerStats {
    run.output
        .peer_stats
        .iter()
        .find(|s| s.node == probe)
        .expect("probe stats flushed")
}

#[test]
fn streaming_survives_tracker_blackout_and_recovery() {
    // Trackers die at 150 s (probes join at 120 s) and restart empty at
    // 250 s. The mesh must keep streaming throughout on gossip referrals
    // alone — the paper's "trackers are databases of active peers" claim.
    let scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 21).with_faults(
        FaultPlan::new().tracker_blackout(SimTime::from_secs(150), SimTime::from_secs(250)),
    );
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);

    let last_reply = last_data_reply(&run, report.probe).expect("probe received data");
    assert!(
        last_reply > SimTime::from_secs(300),
        "data flow died with the trackers (last reply at {last_reply})"
    );
    let stats = probe_stats(&run, report.probe);
    assert!(stats.playback_started.is_some());
    assert!(
        stats.stall_ratio() < 0.5,
        "stall ratio too high after outage: {}",
        stats.stall_ratio()
    );

    // The outage boundaries were marked in the capture stream.
    let marks: Vec<_> = run
        .output
        .fault_marks
        .iter()
        .filter(|m| m.label == "tracker-outage")
        .collect();
    assert_eq!(marks.len(), 2, "begin + recovery markers expected");
    assert!(marks[0].begins && !marks[1].begins);
    assert_eq!(marks[0].t, SimTime::from_secs(150));
    assert_eq!(marks[1].t, SimTime::from_secs(250));

    run.check_invariants().assert_clean();
}

#[test]
fn tracker_only_baseline_collapses_without_trackers() {
    use plsim_node::PeerConfig;
    // In the BitTorrent-style baseline, peers never learn about each other
    // except through trackers. If trackers die before the probes join,
    // late joiners cannot find anyone.
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 21)
        .with_faults(FaultPlan::new().tracker_outage(SimTime::from_secs(30)));
    scenario.peer_config = PeerConfig::tracker_only_baseline();
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    assert!(
        report.data.bytes.total() < 1_000_000,
        "tracker-only peer should starve without trackers, got {} bytes",
        report.data.bytes.total()
    );
    // Starvation must still be invariant-clean (no phantom playback).
    run.check_invariants().assert_clean();
}

#[test]
fn mesh_survives_churn_storm_at_steady_state() {
    // At 240 s — well into steady playback — 30% of the online viewers
    // vanish at once and rejoin 30 s later.
    let scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 7).with_faults(
        FaultPlan::new().churn_storm(SimTime::from_secs(240), 0.30, Some(SimTime::from_secs(30))),
    );
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);

    let last_reply = last_data_reply(&run, report.probe).expect("probe received data");
    assert!(
        last_reply > SimTime::from_secs(300),
        "mesh did not survive the churn storm (last reply at {last_reply})"
    );
    let stats = probe_stats(&run, report.probe);
    assert!(stats.playback_started.is_some(), "probe never played");
    assert!(
        stats.stall_ratio() < 0.6,
        "probe mostly stalled through the storm: {}",
        stats.stall_ratio()
    );

    // The paper's locality ordering must still hold for the China probes:
    // a TELE host watching a popular channel fetches mostly from its own
    // ISP, while the Mason (Foreign) probe has almost no same-ISP supply.
    let tele = run.locality_avg(ProbeSite::Tele);
    let mason = run.locality_avg(ProbeSite::Mason);
    assert!(
        tele > mason,
        "locality ordering flipped under churn: TELE {tele:.3} vs Mason {mason:.3}"
    );

    run.check_invariants().assert_clean();
}

#[test]
fn tele_cnc_partition_cuts_cross_isp_traffic_and_streaming_survives() {
    // The TELE↔CNC interconnect is de-peered from 200 s to the end of the
    // run. Each side must keep streaming from same-ISP peers, and no
    // packet may cross the cut (the invariant checker enforces it).
    let partition_start = SimTime::from_secs(200);
    let horizon = SimTime::from_secs_f64(Scale::Tiny.duration_secs());
    let scenario =
        Scenario::new(ChannelClass::Popular, Scale::Tiny, 11).with_faults(FaultPlan::new().link(
            LinkFault::partition(Isp::Tele, Isp::Cnc, partition_start, horizon),
        ));
    let run = scenario.run();
    run.check_invariants().assert_clean();

    let report = run.report(ProbeSite::Tele);
    let last_reply = last_data_reply(&run, report.probe).expect("probe received data");
    assert!(
        last_reply > SimTime::from_secs(300),
        "TELE side stopped streaming after the partition (last reply at {last_reply})"
    );

    // Direct spot-check of the isolation, independent of the checker: no
    // inbound CNC packet at the TELE probe deep inside the window.
    let late_cross = run
        .output
        .records
        .rows()
        .filter(|r| r.probe == report.probe && r.direction == Direction::Inbound)
        .filter(|r| r.t >= partition_start + SimTime::from_secs(10))
        .filter(|r| run.output.topology.host(r.remote).isp == Isp::Cnc)
        .count();
    assert_eq!(late_cross, 0, "packets crossed a partitioned interconnect");
}

#[test]
fn combined_faults_run_clean() {
    // The union: tracker blackout + churn storm + degraded interconnect,
    // overlapping. The mesh may degrade, but the run must stay
    // structurally sound and somebody must still be playing.
    let scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 5)
        .with_faults(pplive_locality::combined_chaos(Scale::Tiny));
    let run = scenario.run();
    run.check_invariants().assert_clean();

    let summary = pplive_locality::PlaybackSummary::summarize(&run.output.peer_stats);
    assert!(summary.started > 0, "nobody ever played");
    assert!(summary.chunks_played > 0);
    // Every scheduled boundary produced a marker, in firing order.
    assert!(!run.output.fault_marks.is_empty());
    assert!(run.output.fault_marks.windows(2).all(|w| w[0].t <= w[1].t));
}

#[test]
fn loss_ramp_degrades_gracefully() {
    // Packet loss ramps up by +8% over the middle of the run: drops must
    // rise, streaming must survive.
    let scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 33)
        .with_faults(pplive_locality::loss_surge(Scale::Tiny));
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    assert!(
        report.data.bytes.total() > 1_000_000,
        "streaming should survive the loss surge, got {} bytes",
        report.data.bytes.total()
    );
    assert!(run.output.sim.messages_dropped > 0, "ramp dropped nothing");
    run.check_invariants().assert_clean();
}

#[test]
fn lossy_network_still_streams() {
    use plsim_net::LinkModel;
    // Static heavy loss (no fault plan): the pre-existing robustness bar.
    let mut scenario = Scenario::new(ChannelClass::Popular, Scale::Tiny, 33);
    scenario.link = LinkModel {
        loss_intra: 0.03,
        loss_cross_cn: 0.08,
        loss_transoceanic: 0.12,
        ..LinkModel::default()
    };
    let run = scenario.run();
    let report = run.report(ProbeSite::Tele);
    assert!(
        report.data.bytes.total() > 1_000_000,
        "streaming should survive heavy loss, got {} bytes",
        report.data.bytes.total()
    );
    assert!(run.output.sim.messages_dropped > 0);
    run.check_invariants().assert_clean();
}
