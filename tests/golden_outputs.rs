//! Golden-equivalence suite: the default `GossipRace` selection policy must
//! regenerate the committed study outputs bit-identically.
//!
//! The policy refactor routes every neighbor decision through the
//! `SelectionPolicy` trait; these tests pin the refactor's central promise —
//! that the default policy is not merely *similar* to the pre-policy
//! protocol but replays it exactly. The fast tests pin run digests and the
//! committed day-series prefix; the `#[ignore]`d test regenerates the full
//! 28-day `studies/fig6_tiny_output.txt` (56 sessions — run it with
//! `cargo test --release -- --ignored` when touching the protocol path).
//!
//! All tests assume the default environment (`PLSIM_POLICY` unset); the
//! digest test additionally pins the policy explicitly so it stays valid
//! under an overridden environment.

use plsim_workload::ChannelClass;
use pplive_locality::{fig_6, pct, PolicySpec, ProbeSite, Scale, Scenario};

const FIG6_GOLDEN: &str = include_str!("../studies/fig6_tiny_output.txt");

#[test]
fn gossip_race_digest_is_pinned() {
    // The exact event/message counts of the canonical Tiny popular session
    // (seed 7) from before the policy layer existed. Any drift here means
    // the default policy perturbed the simulation.
    let mut s = Scenario::new(ChannelClass::Popular, Scale::Tiny, 7);
    s.policy = PolicySpec::GossipRace;
    let run = s.run();
    assert_eq!(run.output.sim.events_processed, 429_724);
    assert_eq!(run.output.sim.messages_sent, 308_409);
    assert_eq!(run.output.sim.messages_dropped, 2_083);
    assert_eq!(pct(run.locality_avg(ProbeSite::Tele)), "93.5%");
    assert_eq!(pct(run.locality_avg(ProbeSite::Cnc)), "53.1%");
    assert_eq!(pct(run.locality_avg(ProbeSite::Mason)), "2.1%");
    // The default policy never rejects a candidate.
    assert_eq!(run.metrics().counter("node.policy_rejections"), Some(0));
}

#[test]
fn gossip_race_matches_fig6_golden_prefix() {
    // Day rows of the committed 28-day series are independent runs, so a
    // 3-day regeneration must reproduce the file's first three data rows
    // (plus header) character-for-character.
    let rendered = fig_6(3, Scale::Tiny, 42).render();
    let got: Vec<&str> = rendered.lines().take(5).collect();
    let want: Vec<&str> = FIG6_GOLDEN.lines().take(5).collect();
    assert_eq!(
        got, want,
        "fig6 prefix diverged from studies/fig6_tiny_output.txt"
    );
}

#[test]
#[ignore = "regenerates 56 sessions; run with --release -- --ignored"]
fn gossip_race_regenerates_fig6_golden_in_full() {
    let mut rendered = fig_6(28, Scale::Tiny, 42).render();
    rendered.push('\n'); // the committed file was `plsim fig6 ... > file`
    assert_eq!(
        rendered, FIG6_GOLDEN,
        "full 28-day regeneration diverged from studies/fig6_tiny_output.txt"
    );
}
