//! Integration tests: the qualitative findings of the paper must hold on a
//! small end-to-end simulation, and the measurement pipeline must be
//! internally consistent.

use plsim_capture::{Direction, KindRef};
use plsim_net::Isp;
use plsim_proto::PeerList;
use pplive_locality::{ProbeSite, Scale, Scenario};
use plsim_workload::ChannelClass;

// Seed re-pinned when the kernel moved to origin-keyed event ordering:
// outcomes at a fixed seed legitimately changed, and the old seed's tiny
// world left the TELE probe with 9 connected peers — too few for the
// rank-distribution analysis these invariants read.
fn tiny_popular() -> pplive_locality::ScenarioRun {
    Scenario::new(ChannelClass::Popular, Scale::Tiny, 7).run()
}

#[test]
fn probes_stream_successfully() {
    let run = tiny_popular();
    for (site, report) in &run.reports {
        assert!(
            report.data.bytes.total() > 1_000_000,
            "{site:?} probe downloaded almost nothing"
        );
        assert!(
            report.data.transmissions.total() > 100,
            "{site:?} probe made too few transmissions"
        );
    }
    // The probes' peer stats confirm playback started.
    for &probe in &run.output.probes {
        let stats = run
            .output
            .peer_stats
            .iter()
            .find(|s| s.node == probe)
            .expect("probe stats flushed");
        assert!(stats.playback_started.is_some(), "probe never played");
        assert!(
            stats.stall_ratio() < 0.5,
            "probe mostly stalled: {}",
            stats.stall_ratio()
        );
    }
}

#[test]
fn peer_lists_in_captures_respect_protocol_limit() {
    let run = tiny_popular();
    for record in &run.output.records {
        if let KindRef::PeerListResponse { peer_ips, .. }
        | KindRef::TrackerResponse { peer_ips } = record.kind
        {
            assert!(
                peer_ips.len() <= PeerList::MAX_LEN,
                "list of {} entries exceeds the protocol cap",
                peer_ips.len()
            );
        }
    }
}

#[test]
fn most_peer_lists_come_from_neighbors_not_trackers() {
    // The paper's finding: after bootstrap, peers mainly obtain lists from
    // connected neighbors; trackers are just entry points.
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let from_peers: u64 = report
        .returned_by_source
        .iter()
        .filter(|(src, _)| matches!(src, plsim_analysis::ListSource::Peer(_)))
        .map(|(_, counts)| counts.total())
        .sum();
    let from_trackers: u64 = report
        .returned_by_source
        .iter()
        .filter(|(src, _)| matches!(src, plsim_analysis::ListSource::Tracker(_)))
        .map(|(_, counts)| counts.total())
        .sum();
    assert!(
        from_peers > 2 * from_trackers,
        "referral should dominate: peers={from_peers} trackers={from_trackers}"
    );
}

#[test]
fn byte_accounting_is_consistent() {
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    // Sum of per-ISP bytes equals the sum over inbound data replies.
    let replies_bytes: u64 = run
        .output
        .records
        .rows()
        .filter(|r| r.probe == report.probe && r.direction == Direction::Inbound)
        .filter_map(|r| match r.kind {
            KindRef::DataReply { payload_bytes, .. } => Some(u64::from(payload_bytes)),
            _ => None,
        })
        .sum();
    // data_by_isp only counts matched replies; every inbound reply matches
    // at most one request, so totals must not exceed the raw reply volume.
    assert!(report.data.bytes.total() <= replies_bytes);
    assert!(report.data.bytes.total() > 0);
}

#[test]
fn request_rank_distribution_is_heavy_headed() {
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let c = &report.contributions;
    assert!(c.peers.len() >= 10, "too few connected peers to analyze");
    // Top 10% of peers contribute disproportionately.
    let top10 = c.top10_request_share.expect("top share");
    assert!(top10 > 0.15, "no concentration at all: {top10}");
    // The SE fit exists and describes the data at least as well as Zipf
    // (tiny sessions have too few ranks for a tight fit; the quantitative
    // R² comparison is exercised at Reduced/Paper scale by the harness).
    let se = c.se.expect("SE fit");
    let zipf = c.zipf.expect("Zipf fit");
    assert!(se.r2 > 0.5, "SE fit poor: {}", se.r2);
    assert!(
        se.r2 >= zipf.r2 - 0.05,
        "SE ({}) should not lose clearly to Zipf ({})",
        se.r2,
        zipf.r2
    );
}

#[test]
fn rtt_correlation_is_negative() {
    // Figures 15–18: frequently used peers have smaller RTT.
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let corr = report
        .contributions
        .rtt_correlation
        .expect("rtt correlation");
    assert!(corr < 0.0, "expected negative correlation, got {corr}");
}

#[test]
fn same_isp_responses_are_faster_for_china_probe() {
    use plsim_net::IspGroup;
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let avgs = report.data_rt.averages();
    let (tele, cnc) = (avgs[IspGroup::Tele], avgs[IspGroup::Cnc]);
    if let (Some(tele), Some(cnc)) = (tele, cnc) {
        assert!(
            tele < cnc,
            "TELE probe should see faster TELE replies: {tele} vs {cnc}"
        );
    }
}

#[test]
fn mason_probe_sees_low_home_fraction_on_lists() {
    // Foreign viewers are a small minority of a Chinese channel's audience,
    // so returned lists contain few Foreign addresses (Figures 4a/5a).
    let run = tiny_popular();
    let report = run.report(ProbeSite::Mason);
    assert!(report.returned.total() > 0);
    assert!(
        report.returned.fraction(Isp::Foreign) < 0.5,
        "Foreign addresses should be a minority on returned lists"
    );
}
