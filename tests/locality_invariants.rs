//! Integration tests: the qualitative findings of the paper must hold on a
//! small end-to-end simulation, and the measurement pipeline must be
//! internally consistent.

use plsim_capture::{Direction, KindRef};
use plsim_net::Isp;
use plsim_proto::PeerList;
use plsim_workload::ChannelClass;
use pplive_locality::{PolicySpec, ProbeSite, Scale, Scenario, ScenarioRun};

// Seed re-pinned when the kernel moved to origin-keyed event ordering:
// outcomes at a fixed seed legitimately changed, and the old seed's tiny
// world left the TELE probe with 9 connected peers — too few for the
// rank-distribution analysis these invariants read.
fn tiny_popular() -> pplive_locality::ScenarioRun {
    Scenario::new(ChannelClass::Popular, Scale::Tiny, 7).run()
}

#[test]
fn probes_stream_successfully() {
    let run = tiny_popular();
    for (site, report) in &run.reports {
        assert!(
            report.data.bytes.total() > 1_000_000,
            "{site:?} probe downloaded almost nothing"
        );
        assert!(
            report.data.transmissions.total() > 100,
            "{site:?} probe made too few transmissions"
        );
    }
    // The probes' peer stats confirm playback started.
    for &probe in &run.output.probes {
        let stats = run
            .output
            .peer_stats
            .iter()
            .find(|s| s.node == probe)
            .expect("probe stats flushed");
        assert!(stats.playback_started.is_some(), "probe never played");
        assert!(
            stats.stall_ratio() < 0.5,
            "probe mostly stalled: {}",
            stats.stall_ratio()
        );
    }
}

#[test]
fn peer_lists_in_captures_respect_protocol_limit() {
    let run = tiny_popular();
    for record in &run.output.records {
        if let KindRef::PeerListResponse { peer_ips, .. } | KindRef::TrackerResponse { peer_ips } =
            record.kind
        {
            assert!(
                peer_ips.len() <= PeerList::MAX_LEN,
                "list of {} entries exceeds the protocol cap",
                peer_ips.len()
            );
        }
    }
}

#[test]
fn most_peer_lists_come_from_neighbors_not_trackers() {
    // The paper's finding: after bootstrap, peers mainly obtain lists from
    // connected neighbors; trackers are just entry points.
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let from_peers: u64 = report
        .returned_by_source
        .iter()
        .filter(|(src, _)| matches!(src, plsim_analysis::ListSource::Peer(_)))
        .map(|(_, counts)| counts.total())
        .sum();
    let from_trackers: u64 = report
        .returned_by_source
        .iter()
        .filter(|(src, _)| matches!(src, plsim_analysis::ListSource::Tracker(_)))
        .map(|(_, counts)| counts.total())
        .sum();
    assert!(
        from_peers > 2 * from_trackers,
        "referral should dominate: peers={from_peers} trackers={from_trackers}"
    );
}

#[test]
fn byte_accounting_is_consistent() {
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    // Sum of per-ISP bytes equals the sum over inbound data replies.
    let replies_bytes: u64 = run
        .output
        .records
        .rows()
        .filter(|r| r.probe == report.probe && r.direction == Direction::Inbound)
        .filter_map(|r| match r.kind {
            KindRef::DataReply { payload_bytes, .. } => Some(u64::from(payload_bytes)),
            _ => None,
        })
        .sum();
    // data_by_isp only counts matched replies; every inbound reply matches
    // at most one request, so totals must not exceed the raw reply volume.
    assert!(report.data.bytes.total() <= replies_bytes);
    assert!(report.data.bytes.total() > 0);
}

#[test]
fn request_rank_distribution_is_heavy_headed() {
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let c = &report.contributions;
    assert!(c.peers.len() >= 10, "too few connected peers to analyze");
    // Top 10% of peers contribute disproportionately.
    let top10 = c.top10_request_share.expect("top share");
    assert!(top10 > 0.15, "no concentration at all: {top10}");
    // The SE fit exists and describes the data at least as well as Zipf
    // (tiny sessions have too few ranks for a tight fit; the quantitative
    // R² comparison is exercised at Reduced/Paper scale by the harness).
    let se = c.se.expect("SE fit");
    let zipf = c.zipf.expect("Zipf fit");
    assert!(se.r2 > 0.5, "SE fit poor: {}", se.r2);
    assert!(
        se.r2 >= zipf.r2 - 0.05,
        "SE ({}) should not lose clearly to Zipf ({})",
        se.r2,
        zipf.r2
    );
}

#[test]
fn rtt_correlation_is_negative() {
    // Figures 15–18: frequently used peers have smaller RTT.
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let corr = report
        .contributions
        .rtt_correlation
        .expect("rtt correlation");
    assert!(corr < 0.0, "expected negative correlation, got {corr}");
}

#[test]
fn same_isp_responses_are_faster_for_china_probe() {
    use plsim_net::IspGroup;
    let run = tiny_popular();
    let report = run.report(ProbeSite::Tele);
    let avgs = report.data_rt.averages();
    let (tele, cnc) = (avgs[IspGroup::Tele], avgs[IspGroup::Cnc]);
    if let (Some(tele), Some(cnc)) = (tele, cnc) {
        assert!(
            tele < cnc,
            "TELE probe should see faster TELE replies: {tele} vs {cnc}"
        );
    }
}

// ---------------------------------------------- frontier-shape invariants

fn tiny_popular_with(policy: PolicySpec) -> ScenarioRun {
    let mut s = Scenario::new(ChannelClass::Popular, Scale::Tiny, 7);
    s.policy = policy;
    s.run()
}

/// Population-wide cross-ISP download share, from the observer counters the
/// policy layer maintains.
fn cross_isp_share(run: &ScenarioRun) -> f64 {
    let m = run.metrics();
    let same = m.counter("node.bytes_down_same_isp").unwrap_or(0);
    let cross = m.counter("node.bytes_down_cross_isp").unwrap_or(0);
    assert!(same + cross > 0, "no download traffic at all");
    cross as f64 / (same + cross) as f64
}

#[test]
fn cross_isp_share_is_monotone_in_the_bias_quota() {
    // Tightening the cross-ISP connection quota must not send *more*
    // traffic across the interconnect. A small slack absorbs timing noise
    // between otherwise-unordered adjacent quotas; the end-to-end drop
    // must still be large.
    let quotas = [usize::MAX, 4, 1, 0];
    let shares: Vec<f64> = quotas
        .iter()
        .map(|&q| {
            cross_isp_share(&tiny_popular_with(PolicySpec::BiasedLocality {
                cross_isp_quota: q,
            }))
        })
        .collect();
    for (i, pair) in shares.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] + 0.03,
            "share rose when quota tightened {} -> {}: {} -> {}",
            quotas[i],
            quotas[i + 1],
            pair[0],
            pair[1]
        );
    }
    assert!(
        shares[shares.len() - 1] < shares[0] - 0.10,
        "quota sweep produced no overall transit reduction: {shares:?}"
    );
    // Quota zero admits no cross-ISP connection at all.
    assert!(
        shares[shares.len() - 1] < 1e-9,
        "quota 0 still let transit traffic through: {}",
        shares[shares.len() - 1]
    );
}

#[test]
fn no_bias_point_stays_in_the_paper_regime() {
    // The frontier's anchor is the unmodified protocol: its cross-ISP
    // share and probe locality must match the emergent-locality regime the
    // paper measured (high same-ISP locality at the TELE probe while the
    // population still exchanges a substantial cross-ISP volume).
    let run = tiny_popular();
    let share = cross_isp_share(&run);
    assert!(
        (0.25..=0.55).contains(&share),
        "no-bias cross-ISP share {share} left the paper regime"
    );
    assert!(
        run.locality_avg(ProbeSite::Tele) > 0.85,
        "TELE probe lost emergent locality"
    );
    // The ISP split is an exact decomposition of the download counter.
    let m = run.metrics();
    assert_eq!(
        m.counter("node.bytes_down_same_isp").unwrap_or(0)
            + m.counter("node.bytes_down_cross_isp").unwrap_or(0),
        m.counter("node.bytes_down").unwrap_or(0),
        "same/cross split must partition total download bytes"
    );
}

#[test]
fn unbounded_quota_is_bit_identical_to_the_gossip_race() {
    // BiasedLocality with an unbounded quota admits everything, so the
    // whole simulation must replay the default policy exactly — same event
    // count, same message flow, same captures, same playback outcomes.
    let base = tiny_popular();
    let unbounded = tiny_popular_with(PolicySpec::BiasedLocality {
        cross_isp_quota: usize::MAX,
    });
    assert_eq!(
        base.output.sim.events_processed,
        unbounded.output.sim.events_processed
    );
    assert_eq!(
        base.output.sim.messages_sent,
        unbounded.output.sim.messages_sent
    );
    assert_eq!(
        base.output.sim.messages_dropped,
        unbounded.output.sim.messages_dropped
    );
    assert_eq!(base.output.records.len(), unbounded.output.records.len());
    for key in [
        "node.bytes_down",
        "node.bytes_down_same_isp",
        "node.bytes_down_cross_isp",
        "node.policy_rejections",
        "node.chunks_played",
    ] {
        assert_eq!(
            base.metrics().counter(key),
            unbounded.metrics().counter(key),
            "counter {key} diverged"
        );
    }
    assert_eq!(
        base.locality_avg(ProbeSite::Tele).to_bits(),
        unbounded.locality_avg(ProbeSite::Tele).to_bits(),
        "TELE locality diverged"
    );
    assert_eq!(
        base.output.peer_stats.len(),
        unbounded.output.peer_stats.len()
    );
}

#[test]
fn mason_probe_sees_low_home_fraction_on_lists() {
    // Foreign viewers are a small minority of a Chinese channel's audience,
    // so returned lists contain few Foreign addresses (Figures 4a/5a).
    let run = tiny_popular();
    let report = run.report(ProbeSite::Mason);
    assert!(report.returned.total() > 0);
    assert!(
        report.returned.fraction(Isp::Foreign) < 0.5,
        "Foreign addresses should be a minority on returned lists"
    );
}
