//! Offline vendored mini benchmark harness exposing the slice of the
//! `criterion` API this workspace uses: `Criterion`, benchmark groups,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing model: each benchmark is warmed up once, then run for
//! `sample_size` samples; the mean, best and worst per-iteration times are
//! printed.  Passing `--test` (as `cargo bench -- --test` does in CI) runs
//! every benchmark exactly once and skips measurement, which keeps the
//! smoke run fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects and runs benchmarks.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments (`--test` enables
    /// one-iteration smoke mode; other harness flags are ignored).
    #[must_use]
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_samples: 20,
        }
    }

    /// Whether `--test` smoke mode is active.
    #[must_use]
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Registers and runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = self.default_samples;
        let test_mode = self.test_mode;
        run_one(id, samples, test_mode, &mut f);
        self
    }

    /// Prints the closing summary (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        run_one(&full, samples, self.criterion.test_mode, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        iters: if test_mode { 1 } else { samples as u64 },
        times: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("bench {id}: ok (smoke)");
        return;
    }
    if b.times.is_empty() {
        println!("bench {id}: no measurements");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let best = b.times.iter().min().copied().unwrap_or_default();
    let worst = b.times.iter().max().copied().unwrap_or_default();
    println!(
        "bench {id}: mean {mean:?} (best {best:?}, worst {worst:?}, {} samples)",
        b.times.len()
    );
}

/// Runs the measured closure and records per-iteration wall-clock times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    times: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed());
            drop(black_box(out));
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            test_mode: true,
            default_samples: 3,
        };
        let mut ran = 0;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion {
            test_mode: false,
            default_samples: 20,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("t", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 2);
    }
}
