//! Offline vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention (`lock()` returns the guard
//! directly, no poisoning) over the standard-library primitives.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, PoisonError};

/// A mutex whose `lock` returns the guard directly (no poison handling),
/// like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
