//! Offline vendored mini property-testing harness.
//!
//! Implements the slice of the `proptest` API this workspace uses: the
//! [`Strategy`] trait over ranges / tuples / [`Just`] / [`any`] /
//! `collection::vec`, the `prop_oneof!` union, and a `proptest!` macro that
//! runs each property for `PROPTEST_CASES` deterministic cases (default
//! 64).  No shrinking is performed: on failure the assert message carries
//! the sampled values' debug output via the standard panic payload.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG driving every strategy.
pub type TestRng = SmallRng;

/// Creates the deterministic RNG for one property function.
///
/// Seeded from the test's module path + name so distinct properties explore
/// distinct streams while staying reproducible run-to-run.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
#[must_use]
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Failure raised inside a property, as in `proptest::test_runner`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed test case with the given reason.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// A rejected (filtered-out) test case. This mini-harness treats
    /// rejection as failure, since no workspace test relies on filtering.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`, like real proptest's `prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u64, u32, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, as in `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`, like `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

impl<V> core::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `len`, like
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The usual glob import, like `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, Strategy, TestCaseError, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( Box::new($arm) as Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

/// Defines property tests: each `fn` runs for [`case_count`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::case_count() {
                    let ($($pat,)*) = ($( $crate::Strategy::sample(&($strat), &mut __rng), )*);
                    // Bodies may early-return Err(TestCaseError) like real
                    // proptest; a fall-through body yields Ok(()).
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn union_samples_every_arm() {
        let s = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = crate::test_rng("union");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = collection::vec(0u64..10, 2..5);
        let mut rng = crate::test_rng("vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_binds_patterns(x in 0u64..100, (a, b) in (0u32..4, Just(7u32))) {
            prop_assert!(x < 100);
            prop_assert_eq!(b, 7);
            prop_assert_ne!(a, 9);
        }
    }
}
