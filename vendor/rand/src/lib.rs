//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand 0.9` API it actually
//! uses.  [`rngs::SmallRng`] is a faithful xoshiro256++ generator seeded via
//! SplitMix64 (the same algorithms `rand 0.9` uses on 64-bit targets), so
//! streams are deterministic, high-quality and stable across platforms.
//!
//! Supported surface: `SmallRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] (for `f64`, `u64`, `u32`, `bool`) and
//! [`Rng::random_range`] over integer/float ranges.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u64, u32, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution (uniform in
    /// `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be initialised from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same construction `rand 0.9` uses for xoshiro generators.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    ///
    /// This matches the algorithm `rand 0.9` uses for `SmallRng` on 64-bit
    /// platforms. It is **not** cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; SplitMix64 seeding
            // never produces one, but guard direct from_seed calls anyway.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(0usize..5);
            assert!(b < 5);
            let c = rng.random_range(2u64..=4);
            assert!((2..=4).contains(&c));
            let d = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&d));
        }
    }

    #[test]
    fn range_mean_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }
}
