//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result types so a
//! future exporter can serialize them, but no code path in the repository
//! performs actual serialization (CSV export is hand-rolled).  This shim
//! keeps those derives and trait bounds compiling without crates.io access:
//! the traits are markers with blanket implementations, and the derive
//! macros expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}
