//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The vendored `serde` blanket-implements its marker traits for every
//! type, so the derives have nothing to generate.

use proc_macro::TokenStream;

/// Expands to nothing; the blanket impl in the vendored `serde` already
/// covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the blanket impl in the vendored `serde` already
/// covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
